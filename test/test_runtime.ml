(* Tests for the threaded actor runtime: mailboxes, actor wiring, fission
   and fusion deployment, routing and end-of-stream handling. *)

open Ss_topology
open Ss_operators
open Ss_runtime

let tuple ?(key = 0) ?(tag = 0) values = Tuple.make ~key ~tag values

let op ?kind ?output_selectivity name ms =
  Operator.make ?kind ?output_selectivity ~service_time:(ms /. 1e3) name

(* ------------------------------------------------------------------ *)
(* Mailbox *)

(* Every mailbox test runs against both implementations behind the facade:
   the locking MPSC queue and the lock-free SPSC ring.  The tests below use
   at most one producer domain and one consumer domain, so they are legal
   SPSC schedules too. *)
let mailbox_kinds :
    (string * (capacity:int -> int Mailbox.t)) list =
  [
    ("locking", fun ~capacity -> Mailbox.create ~capacity);
    ("spsc", fun ~capacity -> Mailbox.create_spsc ~capacity);
  ]

let test_mailbox_fifo create () =
  let mb = create ~capacity:4 in
  Mailbox.put mb 1;
  Mailbox.put mb 2;
  Mailbox.put mb 3;
  Alcotest.(check int) "first" 1 (Mailbox.take mb);
  Alcotest.(check int) "second" 2 (Mailbox.take mb);
  Alcotest.(check int) "third" 3 (Mailbox.take mb)

let test_mailbox_try_operations create () =
  let mb = create ~capacity:2 in
  Alcotest.(check bool) "put ok" true (Mailbox.try_put mb 1);
  Alcotest.(check bool) "put ok" true (Mailbox.try_put mb 2);
  Alcotest.(check bool) "full" false (Mailbox.try_put mb 3);
  Alcotest.(check int) "length" 2 (Mailbox.length mb);
  Alcotest.(check (option int)) "take" (Some 1) (Mailbox.try_take mb);
  Alcotest.(check (option int)) "take" (Some 2) (Mailbox.try_take mb);
  Alcotest.(check (option int)) "empty" None (Mailbox.try_take mb)

let test_mailbox_blocking_put create () =
  (* A full mailbox blocks the producer until the consumer drains it. *)
  let mb = create ~capacity:1 in
  Mailbox.put mb 0;
  let unblocked = Atomic.make false in
  let producer =
    Domain.spawn (fun () ->
        Mailbox.put mb 1;
        (* reached only after the main domain takes the first element *)
        Atomic.set unblocked true)
  in
  Unix.sleepf 0.05;
  Alcotest.(check bool) "producer still blocked" false (Atomic.get unblocked);
  Alcotest.(check int) "drain" 0 (Mailbox.take mb);
  Domain.join producer;
  Alcotest.(check bool) "producer resumed" true (Atomic.get unblocked);
  Alcotest.(check int) "second value arrived" 1 (Mailbox.take mb)

let test_mailbox_blocking_take create () =
  let mb = create ~capacity:1 in
  let consumer = Domain.spawn (fun () -> Mailbox.take mb) in
  Unix.sleepf 0.02;
  Mailbox.put mb 42;
  Alcotest.(check int) "value handed over" 42 (Domain.join consumer)

let test_mailbox_invalid_capacity create () =
  Alcotest.check_raises "zero capacity"
    (Invalid_argument "Mailbox.create: capacity must be >= 1") (fun () ->
      ignore (create ~capacity:0))

(* ------------------------------------------------------------------ *)
(* Mailbox close / poison protocol *)

let test_mailbox_close_wakes_producer create () =
  let mb = create ~capacity:1 in
  Mailbox.put mb 0;
  let producer =
    Domain.spawn (fun () ->
        try
          Mailbox.put mb 1;
          `Put_succeeded
        with Mailbox.Closed -> `Woke_closed)
  in
  Unix.sleepf 0.05;
  (* producer is blocked on the full mailbox; close must wake it *)
  Mailbox.close mb;
  Alcotest.(check bool) "blocked producer woke with Closed" true
    (Domain.join producer = `Woke_closed)

let test_mailbox_close_wakes_consumer create () =
  let mb : int Mailbox.t = create ~capacity:4 in
  let consumer =
    Domain.spawn (fun () ->
        try
          ignore (Mailbox.take mb);
          `Take_succeeded
        with Mailbox.Closed -> `Woke_closed)
  in
  Unix.sleepf 0.05;
  Mailbox.close mb;
  Alcotest.(check bool) "blocked consumer woke with Closed" true
    (Domain.join consumer = `Woke_closed)

let test_mailbox_closed_operations create () =
  let mb = create ~capacity:2 in
  Mailbox.put mb 1;
  Mailbox.close mb;
  Mailbox.close mb;
  (* idempotent *)
  Alcotest.(check bool) "reports closed" true (Mailbox.is_closed mb);
  Alcotest.(check int) "pending items discarded" 0 (Mailbox.length mb);
  let raises_closed f =
    try
      ignore (f ());
      false
    with Mailbox.Closed -> true
  in
  Alcotest.(check bool) "put raises" true (raises_closed (fun () -> Mailbox.put mb 2));
  Alcotest.(check bool) "take raises" true (raises_closed (fun () -> Mailbox.take mb));
  Alcotest.(check bool) "try_put raises" true
    (raises_closed (fun () -> Mailbox.try_put mb 2));
  Alcotest.(check bool) "try_take raises" true
    (raises_closed (fun () -> Mailbox.try_take mb))

let drain_list mb ~max =
  let q = Queue.create () in
  let occ = Mailbox.take_batch mb ~max ~into:q in
  (occ, List.of_seq (Queue.to_seq q))

let test_mailbox_put_batch create () =
  let mb = create ~capacity:4 in
  (* try_put_chunk fills the free slots and hands back the leftover. *)
  Mailbox.put mb 0;
  let leftover = Mailbox.try_put_chunk mb [ 1; 2; 3; 4; 5 ] in
  Alcotest.(check (list int)) "leftover suffix" [ 4; 5 ] leftover;
  Alcotest.(check int) "filled to capacity" 4 (Mailbox.length mb);
  Alcotest.(check (list int)) "chunk on full is identity" [ 9 ]
    (Mailbox.try_put_chunk mb [ 9 ]);
  (* put_batch blocks for space; a consumer domain drains it through. *)
  let consumer =
    Domain.spawn (fun () -> List.init 9 (fun _ -> Mailbox.take mb))
  in
  Mailbox.put_batch mb [ 4; 5; 6; 7; 8 ];
  Alcotest.(check (list int)) "order preserved across the batch"
    [ 0; 1; 2; 3; 4; 5; 6; 7; 8 ] (Domain.join consumer);
  (* Empty batches are no-ops, even on a closed mailbox. *)
  Mailbox.put_batch mb [];
  Alcotest.(check (list int)) "empty chunk" [] (Mailbox.try_put_chunk mb []);
  Mailbox.close mb;
  Mailbox.put_batch mb [];
  Alcotest.(check (list int)) "empty chunk after close" []
    (Mailbox.try_put_chunk mb []);
  Alcotest.check_raises "non-empty batch raises after close" Mailbox.Closed
    (fun () -> Mailbox.put_batch mb [ 1 ])

(* Differential property test: drive the locking queue and the SPSC ring
   through the same randomized single-threaded schedule of non-blocking
   operations and demand identical observable behavior — returned values,
   lengths, waiter firings and Closed raises. *)
let mailbox_op_gen =
  QCheck.Gen.(
    frequency
      [
        (4, map (fun x -> `Try_put x) (int_bound 1000));
        (4, return `Try_take);
        (2, map (fun n -> `Take_batch (1 + n)) (int_bound 6));
        (2, map (fun xs -> `Put_chunk xs) (list_size (int_bound 5) (int_bound 1000)));
        (1, return `On_item);
        (1, return `On_space);
        (1, return `Length);
        (1, return `Close);
      ])

let apply_op mb fired op =
  let catching f = try f () with Mailbox.Closed -> `Closed in
  match op with
  | `Try_put x -> catching (fun () -> `Bool (Mailbox.try_put mb x))
  | `Try_take -> catching (fun () -> `Opt (Mailbox.try_take mb))
  | `Take_batch max ->
      catching (fun () ->
          let occ, xs = drain_list mb ~max in
          `Batch (occ, xs))
  | `Put_chunk xs -> catching (fun () -> `List (Mailbox.try_put_chunk mb xs))
  | `On_item ->
      `Park (Mailbox.on_item mb (fun () -> incr fired), !fired)
  | `On_space ->
      `Park (Mailbox.on_space mb (fun () -> incr fired), !fired)
  | `Length -> `Int (Mailbox.length mb)
  | `Close ->
      Mailbox.close mb;
      `Unit

let test_mailbox_differential =
  QCheck.Test.make ~count:500
    ~name:"locking and spsc mailboxes are observationally equivalent"
    (QCheck.make
       QCheck.Gen.(
         pair (int_range 1 8) (list_size (int_bound 60) mailbox_op_gen)))
    (fun (capacity, ops) ->
      let locking = Mailbox.create ~capacity in
      let spsc = Mailbox.create_spsc ~capacity in
      let fired_l = ref 0 and fired_s = ref 0 in
      List.for_all
        (fun op ->
          let rl = apply_op locking fired_l op in
          let rs = apply_op spsc fired_s op in
          rl = rs
          && !fired_l = !fired_s
          && Mailbox.length locking = Mailbox.length spsc
          && Mailbox.is_closed locking = Mailbox.is_closed spsc)
        ops)

(* ------------------------------------------------------------------ *)
(* Executor: basic pipelines *)

let registry_of table v =
  match List.assoc_opt v table with
  | Some b -> b
  | None -> Alcotest.failf "no behavior registered for vertex %d" v

let test_identity_pipeline () =
  let t =
    Topology.create_exn
      [| op "src" 0.1; op "a" 0.1; op "b" 0.1 |]
      [ (0, 1, 1.0); (1, 2, 1.0) ]
  in
  let inputs = List.init 500 (fun i -> tuple [| float_of_int i |]) in
  let m =
    Executor.run
      ~source:(Executor.source_of_list inputs)
      ~registry:(registry_of [ (1, Stateless_ops.identity); (2, Stateless_ops.identity) ])
      t
  in
  Alcotest.(check int) "source emitted" 500 m.Executor.produced.(0);
  Alcotest.(check int) "a consumed" 500 m.Executor.consumed.(1);
  Alcotest.(check int) "b consumed" 500 m.Executor.consumed.(2);
  Alcotest.(check int) "b produced" 500 m.Executor.produced.(2);
  Alcotest.(check bool) "rate positive" true (m.Executor.source_rate > 0.0)

let test_filter_counts () =
  let t =
    Topology.create_exn
      [| op "src" 0.1; op "filter" 0.1; op "sink" 0.1 |]
      [ (0, 1, 1.0); (1, 2, 1.0) ]
  in
  let inputs =
    List.init 400 (fun i -> tuple [| (if i mod 4 = 0 then 1.0 else 0.0) |])
  in
  let m =
    Executor.run
      ~source:(Executor.source_of_list inputs)
      ~registry:
        (registry_of
           [
             (1, Stateless_ops.threshold_filter ~index:0 ~threshold:0.5);
             (2, Stateless_ops.identity);
           ])
      t
  in
  Alcotest.(check int) "filter consumed all" 400 m.Executor.consumed.(1);
  Alcotest.(check int) "filter passed a quarter" 100 m.Executor.produced.(1);
  Alcotest.(check int) "sink consumed the survivors" 100 m.Executor.consumed.(2)

let test_probabilistic_split_conserves_flow () =
  let t =
    Topology.create_exn
      [| op "src" 0.1; op "a" 0.1; op "b" 0.1 |]
      [ (0, 1, 0.3); (0, 2, 0.7) ]
  in
  let inputs = List.init 2000 (fun i -> tuple [| float_of_int i |]) in
  let m =
    Executor.run
      ~source:(Executor.source_of_list inputs)
      ~registry:(registry_of [ (1, Stateless_ops.identity); (2, Stateless_ops.identity) ])
      t
  in
  Alcotest.(check int) "flow conserved" 2000
    (m.Executor.consumed.(1) + m.Executor.consumed.(2));
  (* 30/70 split within generous sampling noise *)
  Alcotest.(check bool)
    (Printf.sprintf "split ratio (%d to a)" m.Executor.consumed.(1))
    true
    (abs (m.Executor.consumed.(1) - 600) < 120)

let test_content_based_router () =
  let t =
    Topology.create_exn
      [| op "src" 0.1; op "low" 0.1; op "high" 0.1 |]
      [ (0, 1, 0.5); (0, 2, 0.5) ]
  in
  let inputs = List.init 100 (fun i -> tuple [| float_of_int i |]) in
  (* Successor 0 is vertex 1 ("low"), successor 1 is vertex 2 ("high"). *)
  let router t = if Tuple.value t 0 < 50.0 then 0 else 1 in
  let m =
    Executor.run
      ~routers:[ (0, router) ]
      ~source:(Executor.source_of_list inputs)
      ~registry:(registry_of [ (1, Stateless_ops.identity); (2, Stateless_ops.identity) ])
      t
  in
  Alcotest.(check int) "low got exactly half" 50 m.Executor.consumed.(1);
  Alcotest.(check int) "high got exactly half" 50 m.Executor.consumed.(2)

let test_diamond_join_counts () =
  let t = Fixtures.diamond ~pa:0.5 ~t_src:0.1 ~t_a:0.1 ~t_b:0.1 ~t_sink:0.1 in
  let inputs = List.init 1000 (fun i -> tuple [| float_of_int i |]) in
  let m =
    Executor.run
      ~source:(Executor.source_of_list inputs)
      ~registry:
        (registry_of
           [
             (1, Stateless_ops.identity);
             (2, Stateless_ops.identity);
             (3, Stateless_ops.identity);
           ])
      t
  in
  Alcotest.(check int) "sink sees every tuple" 1000 m.Executor.consumed.(3)

(* ------------------------------------------------------------------ *)
(* Fission deployment *)

let test_replicated_stateless () =
  let ops = [| op "src" 0.1; Operator.make ~service_time:1e-4 ~replicas:3 "w"; op "sink" 0.1 |] in
  let t = Topology.create_exn ops [ (0, 1, 1.0); (1, 2, 1.0) ] in
  let inputs = List.init 900 (fun i -> tuple [| float_of_int i |]) in
  let m =
    Executor.run
      ~source:(Executor.source_of_list inputs)
      ~registry:(registry_of [ (1, Stateless_ops.identity); (2, Stateless_ops.identity) ])
      t
  in
  Alcotest.(check int) "all consumed across replicas" 900 m.Executor.consumed.(1);
  Alcotest.(check int) "all delivered to the sink" 900 m.Executor.consumed.(2)

let test_partitioned_key_affinity () =
  (* Each replica instance must observe a disjoint key set. The behavior
     below records, per fresh instance, which keys it saw. *)
  let instances : (int, unit) Hashtbl.t list ref = ref [] in
  let mutex = Mutex.create () in
  let recording =
    Behavior.make ~state_kind:Behavior.Partitioned_op ~name:"recorder"
      (fun () ->
        let mine = Hashtbl.create 16 in
        Mutex.lock mutex;
        instances := mine :: !instances;
        Mutex.unlock mutex;
        fun t ->
          Hashtbl.replace mine t.Tuple.key ();
          [ t ])
  in
  let keys = Ss_prelude.Discrete.uniform 16 in
  let ops =
    [|
      op "src" 0.05;
      Operator.make
        ~kind:(Operator.Partitioned_stateful keys)
        ~service_time:1e-4 ~replicas:3 "keyed";
    |]
  in
  let t = Topology.create_exn ops [ (0, 1, 1.0) ] in
  let inputs = List.init 800 (fun i -> tuple ~key:(i mod 16) [| 0.0 |]) in
  let m =
    Executor.run
      ~source:(Executor.source_of_list inputs)
      ~registry:(registry_of [ (1, recording) ])
      t
  in
  Alcotest.(check int) "all tuples processed" 800 m.Executor.consumed.(1);
  let sets = List.map (fun h -> List.of_seq (Hashtbl.to_seq_keys h)) !instances in
  Alcotest.(check int) "three instances" 3 (List.length sets);
  let all = List.concat sets in
  Alcotest.(check int) "instances saw disjoint keys" (List.length all)
    (List.length (List.sort_uniq compare all))

let collect_order () =
  (* A sink behavior recording arrival order of value 0. *)
  let seen = ref [] in
  let mutex = Mutex.create () in
  let behavior =
    Behavior.make ~name:"order_probe" (fun () t ->
        Mutex.lock mutex;
        seen := Tuple.value t 0 :: !seen;
        Mutex.unlock mutex;
        [ t ])
  in
  (behavior, fun () -> List.rev !seen)

let variable_delay =
  (* Work inversely proportional to the value: early tuples are slow, so an
     unordered collector would emit later tuples first. *)
  Behavior.make ~name:"variable_delay" (fun () t ->
      let spins = 600 * (3 - (int_of_float (Tuple.value t 0) mod 3)) in
      let acc = ref 0.0 in
      for i = 1 to spins do
        acc := !acc +. sin (float_of_int i)
      done;
      ignore !acc;
      [ t ])

let ordered_topology () =
  Topology.create_exn
    [|
      op "src" 0.01;
      Operator.make ~service_time:1e-4 ~replicas:3 "workers";
      op "sink" 0.01;
    |]
    [ (0, 1, 1.0); (1, 2, 1.0) ]

let test_ordered_fission_preserves_order () =
  let probe, seen = collect_order () in
  let inputs = List.init 600 (fun i -> tuple [| float_of_int i |]) in
  let m =
    Executor.run ~ordered:[ 1 ]
      ~source:(Executor.source_of_list inputs)
      ~registry:(registry_of [ (1, variable_delay); (2, probe) ])
      (ordered_topology ())
  in
  Alcotest.(check int) "all processed" 600 m.Executor.consumed.(2);
  let received = seen () in
  Alcotest.(check (list (float 0.))) "exact source order"
    (List.init 600 float_of_int) received

let test_ordered_fission_with_selectivity () =
  (* A filter dropping two thirds still emits the survivors in order. *)
  let probe, seen = collect_order () in
  let keep_multiples_of_3 =
    Behavior.make ~name:"keep3" (fun () t ->
        if int_of_float (Tuple.value t 0) mod 3 = 0 then [ t ] else [])
  in
  let inputs = List.init 300 (fun i -> tuple [| float_of_int i |]) in
  let m =
    Executor.run ~ordered:[ 1 ]
      ~source:(Executor.source_of_list inputs)
      ~registry:(registry_of [ (1, keep_multiples_of_3); (2, probe) ])
      (ordered_topology ())
  in
  Alcotest.(check int) "survivors" 100 m.Executor.consumed.(2);
  Alcotest.(check (list (float 0.))) "order kept through the filter"
    (List.init 100 (fun i -> float_of_int (3 * i)))
    (seen ())

let test_ordered_fission_validation () =
  let source = Executor.source_of_list [] in
  let registry = registry_of [ (1, Stateless_ops.identity) ] in
  (* Not replicated. *)
  let t =
    Topology.create_exn [| op "src" 0.01; op "x" 0.01 |] [ (0, 1, 1.0) ]
  in
  (try
     ignore (Executor.run ~ordered:[ 1 ] ~source ~registry t);
     Alcotest.fail "expected rejection"
   with Invalid_argument _ -> ());
  (* Partitioned-stateful. *)
  let t =
    Topology.create_exn
      [|
        op "src" 0.01;
        Operator.make
          ~kind:(Operator.Partitioned_stateful (Ss_prelude.Discrete.uniform 4))
          ~service_time:1e-4 ~replicas:2 "keyed";
      |]
      [ (0, 1, 1.0) ]
  in
  try
    ignore (Executor.run ~ordered:[ 1 ] ~source ~registry t);
    Alcotest.fail "expected rejection"
  with Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Fusion deployment (Algorithm 4) *)

let test_fused_group_equivalent_counts () =
  let build () =
    Topology.create_exn
      [| op "src" 0.05; op "a" 0.05; op "b" 0.05; op "sink" 0.05 |]
      [ (0, 1, 1.0); (1, 2, 1.0); (2, 3, 1.0) ]
  in
  let registry =
    registry_of
      [
        (1, Stateless_ops.scale ~factor:2.0);
        (2, Stateless_ops.threshold_filter ~index:0 ~threshold:1.0);
        (3, Stateless_ops.identity);
      ]
  in
  let inputs () = List.init 600 (fun i -> tuple [| float_of_int i /. 600.0 |]) in
  let plain =
    Executor.run ~source:(Executor.source_of_list (inputs ())) ~registry (build ())
  in
  let fused =
    Executor.run ~fused:[ [ 1; 2 ] ]
      ~source:(Executor.source_of_list (inputs ()))
      ~registry (build ())
  in
  Alcotest.(check int) "same tuples through a" plain.Executor.consumed.(1)
    fused.Executor.consumed.(1);
  Alcotest.(check int) "same tuples through b" plain.Executor.consumed.(2)
    fused.Executor.consumed.(2);
  Alcotest.(check int) "same sink deliveries" plain.Executor.consumed.(3)
    fused.Executor.consumed.(3)

let test_fused_branching_group () =
  (* Fused sub-graph with an internal probabilistic branch: flow is
     conserved between the meta-operator and the external sink. *)
  let t =
    Topology.create_exn
      [| op "src" 0.05; op "fe" 0.05; op "l" 0.05; op "r" 0.05; op "sink" 0.05 |]
      [ (0, 1, 1.0); (1, 2, 0.5); (1, 3, 0.5); (2, 4, 1.0); (3, 4, 1.0) ]
  in
  let registry =
    registry_of
      (List.map (fun v -> (v, Stateless_ops.identity)) [ 1; 2; 3; 4 ])
  in
  let inputs = List.init 500 (fun i -> tuple [| float_of_int i |]) in
  let m =
    Executor.run ~fused:[ [ 1; 2; 3 ] ]
      ~source:(Executor.source_of_list inputs)
      ~registry t
  in
  Alcotest.(check int) "front-end consumed all" 500 m.Executor.consumed.(1);
  Alcotest.(check int) "branches partition the flow" 500
    (m.Executor.consumed.(2) + m.Executor.consumed.(3));
  Alcotest.(check int) "sink got every tuple" 500 m.Executor.consumed.(4)

let test_fused_errors () =
  let t = Fixtures.diamond ~pa:0.5 ~t_src:0.1 ~t_a:0.1 ~t_b:0.1 ~t_sink:0.1 in
  let registry =
    registry_of (List.map (fun v -> (v, Stateless_ops.identity)) [ 1; 2; 3 ])
  in
  let source = Executor.source_of_list [] in
  (* Two entry points. *)
  (try
     ignore (Executor.run ~fused:[ [ 1; 2 ] ] ~source ~registry t);
     Alcotest.fail "expected illegal group"
   with Invalid_argument _ -> ());
  (* Overlapping groups. *)
  try
    ignore (Executor.run ~fused:[ [ 1; 3 ]; [ 3 ] ] ~source ~registry t);
    Alcotest.fail "expected overlap error"
  with Invalid_argument _ -> ()

let test_windowed_operator_in_pipeline () =
  let ops =
    [|
      op "src" 0.05;
      Operator.make ~service_time:1e-4 ~input_selectivity:10.0 "agg";
      op "sink" 0.05;
    |]
  in
  let t = Topology.create_exn ops [ (0, 1, 1.0); (1, 2, 1.0) ] in
  let behavior =
    Window_ops.sum
      ~spec:{ Window_ops.default_spec with Window_ops.length = 50; slide = 10 }
      ()
  in
  let inputs = List.init 500 (fun _ -> tuple [| 1.0 |]) in
  let m =
    Executor.run
      ~source:(Executor.source_of_list inputs)
      ~registry:(registry_of [ (1, behavior); (2, Stateless_ops.identity) ])
      t
  in
  (* Fires at 50, 60, ..., 500: 46 results of value 50. *)
  Alcotest.(check int) "window firings" 46 m.Executor.produced.(1);
  Alcotest.(check int) "sink receives the aggregates" 46 m.Executor.consumed.(2)

let test_small_mailboxes_still_drain () =
  (* Backpressure with capacity-1 mailboxes must not deadlock. *)
  let t = Fixtures.diamond ~pa:0.5 ~t_src:0.1 ~t_a:0.1 ~t_b:0.1 ~t_sink:0.1 in
  let inputs = List.init 300 (fun i -> tuple [| float_of_int i |]) in
  let m =
    Executor.run ~mailbox_capacity:1
      ~source:(Executor.source_of_list inputs)
      ~registry:
        (registry_of (List.map (fun v -> (v, Stateless_ops.identity)) [ 1; 2; 3 ]))
      t
  in
  Alcotest.(check int) "drained" 300 m.Executor.consumed.(3)

(* ------------------------------------------------------------------ *)
(* Supervision: failure containment, timeout, per-actor metrics.

   Before the supervised runtime, a raising behavior killed its domain and
   left every other actor blocked in Mailbox.take/put forever, so each of
   these tests would hang. The watchdog turns any regression back into a
   prompt, diagnosable failure: it hard-exits the test binary (leaked
   wedged domains would otherwise also block normal process exit). *)

let with_watchdog ?(limit = 30.0) f =
  let result = Atomic.make None in
  let d =
    Domain.spawn (fun () ->
        Atomic.set result (Some (try Ok (f ()) with e -> Error e)))
  in
  let t0 = Unix.gettimeofday () in
  let rec wait () =
    match Atomic.get result with
    | Some r -> (
        Domain.join d;
        match r with Ok v -> v | Error e -> raise e)
    | None ->
        if Unix.gettimeofday () -. t0 > limit then begin
          prerr_endline "watchdog: supervised run hung; killing test binary";
          Unix._exit 125
        end;
        Unix.sleepf 0.01;
        wait ()
  in
  wait ()

let bomb ~at =
  Behavior.make ~name:"bomb" (fun () t ->
      if Tuple.value t 0 >= at then failwith "boom" else [ t ])

let check_failed_outcome ~vertex (m : Executor.metrics) =
  (match m.Executor.outcome with
  | Supervision.Actor_failed { vertex = v; status = Failed { exn; _ }; _ } ->
      Alcotest.(check (option int)) "failing vertex recorded" (Some vertex) v;
      Alcotest.(check bool)
        (Printf.sprintf "exception captured (%s)" exn)
        true
        (String.length exn > 0)
  | _ -> Alcotest.fail "expected Actor_failed outcome");
  let failed, cancelled =
    List.fold_left
      (fun (f, c) r ->
        match r.Supervision.status with
        | Supervision.Failed _ -> (f + 1, c)
        | Supervision.Cancelled -> (f, c + 1)
        | Supervision.Completed -> (f, c))
      (0, 0) m.Executor.actors
  in
  Alcotest.(check int) "exactly one failed actor" 1 failed;
  Alcotest.(check bool) "peers were cancelled, not stuck" true (cancelled >= 1)

let test_failure_single_actor () =
  let t =
    Topology.create_exn
      [| op "src" 0.01; op "bomb" 0.01; op "sink" 0.01 |]
      [ (0, 1, 1.0); (1, 2, 1.0) ]
  in
  let inputs = List.init 5000 (fun i -> tuple [| float_of_int i |]) in
  let m =
    with_watchdog (fun () ->
        Executor.run ~mailbox_capacity:4
          ~source:(Executor.source_of_list inputs)
          ~registry:(registry_of [ (1, bomb ~at:50.0); (2, Stateless_ops.identity) ])
          t)
  in
  check_failed_outcome ~vertex:1 m

let test_failure_replicated () =
  let ops =
    [| op "src" 0.01; Operator.make ~service_time:1e-4 ~replicas:3 "w"; op "sink" 0.01 |]
  in
  let t = Topology.create_exn ops [ (0, 1, 1.0); (1, 2, 1.0) ] in
  let inputs = List.init 5000 (fun i -> tuple [| float_of_int i |]) in
  let m =
    with_watchdog (fun () ->
        Executor.run ~mailbox_capacity:4
          ~source:(Executor.source_of_list inputs)
          ~registry:(registry_of [ (1, bomb ~at:100.0); (2, Stateless_ops.identity) ])
          t)
  in
  check_failed_outcome ~vertex:1 m

let test_failure_fused () =
  let t =
    Topology.create_exn
      [| op "src" 0.01; op "a" 0.01; op "b" 0.01; op "sink" 0.01 |]
      [ (0, 1, 1.0); (1, 2, 1.0); (2, 3, 1.0) ]
  in
  let inputs = List.init 5000 (fun i -> tuple [| float_of_int i |]) in
  let m =
    with_watchdog (fun () ->
        Executor.run ~mailbox_capacity:4 ~fused:[ [ 1; 2 ] ]
          ~source:(Executor.source_of_list inputs)
          ~registry:
            (registry_of
               [
                 (1, Stateless_ops.identity);
                 (2, bomb ~at:50.0);
                 (3, Stateless_ops.identity);
               ])
          t)
  in
  (* The meta-operator actor is attributed to the group's front-end. *)
  check_failed_outcome ~vertex:1 m

let test_timeout_shuts_down () =
  let slow_sink =
    Behavior.make ~name:"slow_sink" (fun () t ->
        Unix.sleepf 0.02;
        [ t ])
  in
  let t =
    Topology.create_exn
      [| op "src" 0.01; op "sink" 0.01 |]
      [ (0, 1, 1.0) ]
  in
  let inputs = List.init 500 (fun i -> tuple [| float_of_int i |]) in
  let m =
    with_watchdog (fun () ->
        Executor.run ~timeout:0.15
          ~source:(Executor.source_of_list inputs)
          ~registry:(registry_of [ (1, slow_sink) ])
          t)
  in
  (match m.Executor.outcome with
  | Supervision.Timed_out s ->
      Alcotest.(check (float 1e-9)) "timeout value reported" 0.15 s
  | _ -> Alcotest.fail "expected Timed_out outcome");
  Alcotest.(check bool) "shut down promptly" true (m.Executor.elapsed < 5.0);
  Alcotest.(check bool) "cancelled actors reported" true
    (List.exists
       (fun r -> r.Supervision.status = Supervision.Cancelled)
       m.Executor.actors)

let test_fault_free_run_reports_completed () =
  let t =
    Topology.create_exn
      [| op "src" 0.1; op "a" 0.1; op "b" 0.1 |]
      [ (0, 1, 1.0); (1, 2, 1.0) ]
  in
  let inputs = List.init 500 (fun i -> tuple [| float_of_int i |]) in
  let m =
    with_watchdog (fun () ->
        Executor.run
          ~source:(Executor.source_of_list inputs)
          ~registry:
            (registry_of [ (1, Stateless_ops.identity); (2, Stateless_ops.identity) ])
          t)
  in
  Alcotest.(check bool) "finished" true (m.Executor.outcome = Supervision.Finished);
  Alcotest.(check int) "counts preserved" 500 m.Executor.consumed.(2);
  Alcotest.(check int) "one report per actor" 3 (List.length m.Executor.actors);
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (Printf.sprintf "actor %s completed" r.Supervision.actor)
        true
        (r.Supervision.status = Supervision.Completed))
    m.Executor.actors;
  Alcotest.(check int) "blocked array sized" 3 (Array.length m.Executor.blocked);
  Alcotest.(check int) "occupancy array sized" 3 (Array.length m.Executor.occupancy);
  Array.iter
    (fun b -> Alcotest.(check bool) "blocked non-negative" true (b >= 0.0))
    m.Executor.blocked;
  Array.iter
    (fun o -> Alcotest.(check bool) "occupancy non-negative" true (o >= 0.0))
    m.Executor.occupancy

let test_backpressure_is_measured () =
  (* A slow sink behind a tiny mailbox forces the source to block; the
     blocked-time metric must observe it under both execution models
     (wall-clock blocking in [Mailbox.put] for domains, park-to-resume
     time for pooled tasks). *)
  let t =
    Topology.create_exn [| op "src" 0.01; op "sink" 0.01 |] [ (0, 1, 1.0) ]
  in
  List.iter
    (fun (name, scheduler) ->
      let slow_sink =
        Behavior.make ~name:"slow_sink" (fun () t ->
            Unix.sleepf 0.002;
            [ t ])
      in
      let inputs = List.init 100 (fun i -> tuple [| float_of_int i |]) in
      let m =
        with_watchdog (fun () ->
            Executor.run ~scheduler ~mailbox_capacity:1
              ~source:(Executor.source_of_list inputs)
              ~registry:(registry_of [ (1, slow_sink) ])
              t)
      in
      Alcotest.(check bool) (name ^ ": finished") true
        (m.Executor.outcome = Supervision.Finished);
      Alcotest.(check bool)
        (Printf.sprintf "%s: source blocked time observed (%.4fs)" name
           m.Executor.blocked.(0))
        true
        (m.Executor.blocked.(0) > 0.01))
    [ ("pool", `Pool 2); ("domains", `Domain_per_actor) ]

let test_replicated_source_rejected () =
  let ops = [| Operator.make ~service_time:1e-3 ~replicas:2 "src"; op "s" 0.1 |] in
  let t = Topology.create_exn ops [ (0, 1, 1.0) ] in
  Alcotest.check_raises "replicated source"
    (Invalid_argument "Executor.run: the source operator cannot be replicated")
    (fun () ->
      ignore
        (Executor.run
           ~source:(Executor.source_of_list [])
           ~registry:(registry_of [ (1, Stateless_ops.identity) ])
           t))

let test_source_of_fn () =
  let src = Executor.source_of_fn ~count:3 (fun i -> tuple [| float_of_int i |]) in
  Alcotest.(check bool) "first" true (src () <> None);
  Alcotest.(check bool) "second" true (src () <> None);
  Alcotest.(check bool) "third" true (src () <> None);
  Alcotest.(check bool) "exhausted" true (src () = None)

let test_source_throttled_deficit_catchup () =
  (* After a consumer stall, the throttle catches its deficit up without
     sleeping — but never overshoots the long-run schedule (each tuple's
     slot stays [t0 + i/rate]): a bounded burst, then normal pacing. *)
  let rate = 1000.0 in
  let n = 300 in
  let src =
    Executor.source_throttled ~rate
      (Executor.source_of_fn ~count:n (fun i -> tuple [| float_of_int i |]))
  in
  let pull k =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to k do
      match src () with
      | Some _ -> ()
      | None -> Alcotest.fail "source exhausted early"
    done;
    Unix.gettimeofday () -. t0
  in
  (* Phase 1: paced consumption — 100 tuples at 1000/s is ~0.1 s. *)
  let paced = pull 100 in
  Alcotest.(check bool)
    (Printf.sprintf "paced phase took %.3fs (>= 0.08)" paced)
    true (paced >= 0.08);
  (* Phase 2: the consumer stalls for 0.15 s — a 150-tuple deficit. *)
  Unix.sleepf 0.15;
  (* Phase 3: the deficit drains without sleeping... *)
  let burst = pull 150 in
  Alcotest.(check bool)
    (Printf.sprintf "deficit caught up without sleeping (%.3fs < 0.1)" burst)
    true (burst < 0.1);
  (* ...and pacing resumes within tolerance: the remaining 50 tuples are
     back on their schedule slots, ~50 ms, never an unbounded burst. *)
  let resumed = pull 50 in
  Alcotest.(check bool)
    (Printf.sprintf "pacing resumed after catch-up (%.3fs >= 0.03)" resumed)
    true (resumed >= 0.03);
  Alcotest.(check bool) "stream exhausted" true (src () = None)

(* ------------------------------------------------------------------ *)
(* N:M scheduler: batch/waiter mailbox operations *)

let test_mailbox_take_batch create () =
  let mb = create ~capacity:8 in
  for i = 1 to 5 do
    Mailbox.put mb i
  done;
  (* take_batch reports the pre-drain occupancy: the adaptive drain's
     occupancy sample, observed for free. *)
  Alcotest.(check (pair int (list int)))
    "batch bounded" (5, [ 1; 2; 3 ]) (drain_list mb ~max:3);
  Alcotest.(check (pair int (list int)))
    "drains the rest" (2, [ 4; 5 ]) (drain_list mb ~max:10);
  Alcotest.(check (pair int (list int)))
    "empty batch" (0, []) (drain_list mb ~max:4);
  Alcotest.check_raises "max must be positive"
    (Invalid_argument "Mailbox.take_batch: max must be >= 1") (fun () ->
      ignore (drain_list mb ~max:0));
  (* The reusable drain buffer is appended to, not cleared. *)
  Mailbox.put mb 7;
  let q = Queue.create () in
  Queue.push 6 q;
  ignore (Mailbox.take_batch mb ~max:4 ~into:q);
  Alcotest.(check (list int)) "appends to the buffer" [ 6; 7 ]
    (List.of_seq (Queue.to_seq q));
  Mailbox.close mb;
  try
    ignore (drain_list mb ~max:1);
    Alcotest.fail "expected Closed"
  with Mailbox.Closed -> ()

let test_take_batch_wakes_blocked_producer create () =
  let mb = create ~capacity:2 in
  Mailbox.put mb 1;
  Mailbox.put mb 2;
  let producer = Domain.spawn (fun () -> Mailbox.put mb 3) in
  Unix.sleepf 0.02;
  Alcotest.(check (pair int (list int)))
    "batch drains" (2, [ 1; 2 ]) (drain_list mb ~max:8);
  Domain.join producer;
  Alcotest.(check (pair int (list int)))
    "producer got its slot" (1, [ 3 ]) (drain_list mb ~max:8)

let test_mailbox_waiter_registration create () =
  let mb = create ~capacity:1 in
  let fired = Atomic.make 0 in
  let cb () = Atomic.incr fired in
  (* Empty mailbox: space is available, items are not. *)
  Alcotest.(check bool) "space available -> no park" false (Mailbox.on_space mb cb);
  Alcotest.(check bool) "empty -> parks" true (Mailbox.on_item mb cb);
  Alcotest.(check int) "not fired yet" 0 (Atomic.get fired);
  Alcotest.(check bool) "put succeeds" true (Mailbox.try_put mb 1);
  Alcotest.(check int) "item arrival fires waiter" 1 (Atomic.get fired);
  (* Full mailbox: the duals. *)
  Alcotest.(check bool) "item present -> no park" false (Mailbox.on_item mb cb);
  Alcotest.(check bool) "full -> parks" true (Mailbox.on_space mb cb);
  Alcotest.(check (option int)) "take succeeds" (Some 1) (Mailbox.try_take mb);
  Alcotest.(check int) "freed slot fires waiter" 2 (Atomic.get fired);
  (* Closing both fires parked waiters and refuses new registrations. *)
  let mb2 : int Mailbox.t = create ~capacity:1 in
  Alcotest.(check bool) "parks while open" true (Mailbox.on_item mb2 cb);
  Mailbox.close mb2;
  Alcotest.(check int) "close fires parked waiter" 3 (Atomic.get fired);
  Alcotest.(check bool) "closed -> no park (item)" false (Mailbox.on_item mb2 cb);
  Alcotest.(check bool) "closed -> no park (space)" false (Mailbox.on_space mb2 cb)

let test_sched_parked_wakeup_on_close create () =
  (* A pooled task parked on an empty mailbox must wake when the mailbox is
     poisoned and observe Closed — the supervision shutdown path under the
     N:M scheduler. *)
  with_watchdog (fun () ->
      let mb : int Mailbox.t = create ~capacity:4 in
      let result = Atomic.make `Pending in
      let pool = Ss_sched.Sched.create ~workers:2 () in
      Ss_sched.Sched.spawn pool (fun () ->
          let rec read () =
            match Mailbox.try_take mb with
            | Some _ -> read ()
            | None ->
                Ss_sched.Sched.suspend ~register:(Mailbox.on_item mb);
                read ()
          in
          match read () with
          | () -> ()
          | exception Mailbox.Closed -> Atomic.set result `Woke_closed);
      let closer =
        Domain.spawn (fun () ->
            Unix.sleepf 0.05;
            Mailbox.close mb)
      in
      Ss_sched.Sched.run pool;
      Domain.join closer;
      Alcotest.(check bool) "parked task woke with Closed" true
        (Atomic.get result = `Woke_closed))

(* ------------------------------------------------------------------ *)
(* Pool mode: supervision parity with the domain-per-actor mode *)

let failure_metrics scheduler =
  let t =
    Topology.create_exn
      [| op "src" 0.01; op "bomb" 0.01; op "sink" 0.01 |]
      [ (0, 1, 1.0); (1, 2, 1.0) ]
  in
  let inputs = List.init 5000 (fun i -> tuple [| float_of_int i |]) in
  with_watchdog (fun () ->
      Executor.run ~scheduler ~mailbox_capacity:4
        ~source:(Executor.source_of_list inputs)
        ~registry:(registry_of [ (1, bomb ~at:50.0); (2, Stateless_ops.identity) ])
        t)

let test_pool_failure_parity () =
  let pool = failure_metrics (`Pool 2) in
  let legacy = failure_metrics `Domain_per_actor in
  check_failed_outcome ~vertex:1 pool;
  check_failed_outcome ~vertex:1 legacy;
  match (pool.Executor.outcome, legacy.Executor.outcome) with
  | Supervision.Actor_failed p, Supervision.Actor_failed l ->
      Alcotest.(check string) "same failing actor" l.Supervision.actor
        p.Supervision.actor;
      Alcotest.(check (option int)) "same failing vertex" l.Supervision.vertex
        p.Supervision.vertex
  | _ -> Alcotest.fail "expected Actor_failed in both modes"

let timeout_metrics scheduler =
  let slow_sink =
    Behavior.make ~name:"slow_sink" (fun () t ->
        Unix.sleepf 0.02;
        [ t ])
  in
  let t =
    Topology.create_exn [| op "src" 0.01; op "sink" 0.01 |] [ (0, 1, 1.0) ]
  in
  let inputs = List.init 500 (fun i -> tuple [| float_of_int i |]) in
  with_watchdog (fun () ->
      Executor.run ~scheduler ~timeout:0.15
        ~source:(Executor.source_of_list inputs)
        ~registry:(registry_of [ (1, slow_sink) ])
        t)

let test_pool_timeout_parity () =
  let pool = timeout_metrics (`Pool 2) in
  let legacy = timeout_metrics `Domain_per_actor in
  List.iter
    (fun (m : Executor.metrics) ->
      (match m.Executor.outcome with
      | Supervision.Timed_out s ->
          Alcotest.(check (float 1e-9)) "timeout value reported" 0.15 s
      | _ -> Alcotest.fail "expected Timed_out outcome");
      Alcotest.(check bool) "shut down promptly" true (m.Executor.elapsed < 5.0))
    [ pool; legacy ]

let identity_registry vs =
  registry_of (List.map (fun v -> (v, Stateless_ops.identity)) vs)

let test_sample_occupancy_gating () =
  (* With sampling off, no monitor domain (legacy) / no tick (pool) runs
     and the occupancy metric is all zeros; everything else is intact. *)
  let t =
    Topology.create_exn [| op "src" 0.01; op "sink" 0.01 |] [ (0, 1, 1.0) ]
  in
  List.iter
    (fun scheduler ->
      let m =
        with_watchdog (fun () ->
            Executor.run ~scheduler
              ~instrument:
                { Executor.default_instrument with sample_occupancy = false }
              ~source:
                (Executor.source_of_fn ~count:200 (fun i ->
                     tuple [| float_of_int i |]))
              ~registry:(identity_registry [ 1 ])
              t)
      in
      Alcotest.(check bool) "finished" true
        (m.Executor.outcome = Supervision.Finished);
      Alcotest.(check int) "counts intact" 200 m.Executor.consumed.(1);
      Array.iter
        (fun o -> Alcotest.(check (float 0.)) "occupancy zero" 0.0 o)
        m.Executor.occupancy)
    [ `Pool 2; `Domain_per_actor ]

let test_pool_scales_past_domain_budget () =
  (* 40 replicated stages deploy as 201 actors (source + 40×(emitter +
     3 workers + collector)): far beyond the legacy domain budget, routine
     for the pool — and the whole run needs only the pool's 2 workers plus
     the calling domain. *)
  let stages = 40 in
  let ops =
    Array.init (stages + 2) (fun i ->
        if i = 0 then op "src" 0.001
        else if i = stages + 1 then op "sink" 0.001
        else
          Operator.make ~service_time:1e-6 ~replicas:3
            (Printf.sprintf "s%d" i))
  in
  let edges = List.init (stages + 1) (fun i -> (i, i + 1, 1.0)) in
  let t = Topology.create_exn ops edges in
  let vs = List.init (stages + 1) (fun i -> i + 1) in
  (try
     ignore
       (Executor.run ~scheduler:`Domain_per_actor
          ~source:(Executor.source_of_list [])
          ~registry:(identity_registry vs) t);
     Alcotest.fail "expected domain-budget rejection"
   with Invalid_argument _ -> ());
  let m =
    with_watchdog ~limit:60.0 (fun () ->
        Executor.run ~scheduler:(`Pool 2)
          ~source:
            (Executor.source_of_fn ~count:300 (fun i ->
                 tuple [| float_of_int i |]))
          ~registry:(identity_registry vs) t)
  in
  Alcotest.(check bool) "finished" true (m.Executor.outcome = Supervision.Finished);
  Alcotest.(check int) "sink saw every tuple" 300 m.Executor.consumed.(stages + 1)

(* ------------------------------------------------------------------ *)
(* Scheduler equivalence: pool counts = domain-per-actor counts = the
   counts the DES replay predicts for the same seed *)

let run_with scheduler ?placement ?channels ?fused ?ordered topo vs ~tuples
    ~seed =
  with_watchdog (fun () ->
      Executor.run ~scheduler ?placement ?channels ?fused ?ordered ~seed
        ~source:
          (Executor.source_of_fn ~count:tuples (fun i ->
               tuple [| float_of_int i |]))
        ~registry:(identity_registry vs) topo)

let check_equivalence ?fused ?ordered ~name build vs ~tuples ~seed =
  let pool = run_with (`Pool 2) ?fused ?ordered (build ()) vs ~tuples ~seed in
  let legacy =
    run_with `Domain_per_actor ?fused ?ordered (build ()) vs ~tuples ~seed
  in
  let replay_consumed, replay_produced =
    Ss_sim.Engine.replay ?fused ~seed ~tuples (build ())
  in
  Alcotest.(check bool) (name ^ ": pool finished") true
    (pool.Executor.outcome = Supervision.Finished);
  Alcotest.(check bool) (name ^ ": legacy finished") true
    (legacy.Executor.outcome = Supervision.Finished);
  Alcotest.(check (array int)) (name ^ ": consumed, pool = legacy")
    legacy.Executor.consumed pool.Executor.consumed;
  Alcotest.(check (array int)) (name ^ ": produced, pool = legacy")
    legacy.Executor.produced pool.Executor.produced;
  Alcotest.(check (array int)) (name ^ ": consumed = DES replay")
    replay_consumed pool.Executor.consumed;
  Alcotest.(check (array int)) (name ^ ": produced = DES replay")
    replay_produced pool.Executor.produced;
  (* Placement-partitioned and locked-baseline variants must produce the
     same per-vertex counts: locality and scheduler core change where
     actors run, never what they compute. *)
  List.iter
    (fun (variant, scheduler, with_placement) ->
      let topo = build () in
      let placement =
        if with_placement then
          Some (Array.init (Topology.size topo) (fun v -> v mod 2))
        else None
      in
      let m = run_with scheduler ?placement ?fused ?ordered topo vs ~tuples ~seed in
      Alcotest.(check bool)
        (Printf.sprintf "%s (%s): finished" name variant)
        true
        (m.Executor.outcome = Supervision.Finished);
      Alcotest.(check (array int))
        (Printf.sprintf "%s (%s): consumed = legacy" name variant)
        legacy.Executor.consumed m.Executor.consumed;
      Alcotest.(check (array int))
        (Printf.sprintf "%s (%s): produced = legacy" name variant)
        legacy.Executor.produced m.Executor.produced)
    [
      ("pool+placement", `Pool 2, true);
      ("locked pool", `Locked_pool 2, false);
      ("locked pool+placement", `Locked_pool 2, true);
    ]

let test_equivalence_plain () =
  check_equivalence ~name:"plain"
    (fun () ->
      Topology.create_exn
        [| op "src" 0.01; op "a" 0.01; op "b" 0.01; op "sink" 0.01 |]
        [ (0, 1, 0.3); (0, 2, 0.7); (1, 3, 1.0); (2, 3, 1.0) ])
    [ 1; 2; 3 ] ~tuples:2000 ~seed:7

let test_equivalence_fission () =
  check_equivalence ~name:"fission"
    (fun () ->
      Topology.create_exn
        [|
          op "src" 0.01;
          Operator.make ~service_time:1e-5 ~replicas:3 "w";
          op "s1" 0.01;
          op "s2" 0.01;
        |]
        [ (0, 1, 1.0); (1, 2, 0.4); (1, 3, 0.6) ])
    [ 1; 2; 3 ] ~tuples:900 ~seed:11

let test_equivalence_ordered_fission () =
  check_equivalence ~ordered:[ 1 ] ~name:"ordered fission"
    (fun () ->
      Topology.create_exn
        [|
          op "src" 0.01;
          Operator.make ~service_time:1e-5 ~replicas:3 "w";
          op "s1" 0.01;
          op "s2" 0.01;
        |]
        [ (0, 1, 1.0); (1, 2, 0.4); (1, 3, 0.6) ])
    [ 1; 2; 3 ] ~tuples:600 ~seed:13

let test_equivalence_fused () =
  check_equivalence ~fused:[ [ 1; 2; 3 ] ] ~name:"fused"
    (fun () ->
      Topology.create_exn
        [|
          op "src" 0.01;
          op "fe" 0.01;
          op "l" 0.01;
          op "r" 0.01;
          op "sink" 0.01;
        |]
        [ (0, 1, 1.0); (1, 2, 0.5); (1, 3, 0.5); (2, 4, 1.0); (3, 4, 1.0) ])
    [ 1; 2; 3; 4 ] ~tuples:600 ~seed:17

(* The `--groups auto` path at library level: partition a fissioned
   topology with the communication-aware placement and check the grouped
   pool's counts against the ungrouped pool and `Domain_per_actor. *)
let test_equivalence_placement_assignment () =
  let build () =
    Topology.create_exn
      [|
        op "src" 0.01;
        Operator.make ~service_time:1e-5 ~replicas:3 "w";
        op "s1" 0.01;
        op "s2" 0.01;
      |]
      [ (0, 1, 1.0); (1, 2, 0.4); (1, 3, 0.6) ]
  in
  let vs = [ 1; 2; 3 ] and tuples = 900 and seed = 19 in
  let placement =
    let cluster =
      Ss_placement.Cluster.homogeneous ~nodes:2 ~cores:1 ()
    in
    Ss_placement.Placement.communication_aware cluster (build ())
  in
  let grouped =
    run_with (`Pool 2) ~placement (build ()) vs ~tuples ~seed
  in
  let ungrouped = run_with (`Pool 2) (build ()) vs ~tuples ~seed in
  let legacy = run_with `Domain_per_actor (build ()) vs ~tuples ~seed in
  Alcotest.(check bool) "placement: grouped finished" true
    (grouped.Executor.outcome = Supervision.Finished);
  Alcotest.(check (array int)) "placement: consumed, grouped = ungrouped"
    ungrouped.Executor.consumed grouped.Executor.consumed;
  Alcotest.(check (array int)) "placement: produced, grouped = ungrouped"
    ungrouped.Executor.produced grouped.Executor.produced;
  Alcotest.(check (array int)) "placement: consumed, grouped = domains"
    legacy.Executor.consumed grouped.Executor.consumed;
  Alcotest.(check (array int)) "placement: produced, grouped = domains"
    legacy.Executor.produced grouped.Executor.produced

let test_placement_validation () =
  let build () =
    Topology.create_exn
      [| op "src" 0.01; op "a" 0.01 |]
      [ (0, 1, 1.0) ]
  in
  Alcotest.check_raises "wrong length"
    (Invalid_argument "Executor.run: placement length must equal topology size")
    (fun () ->
      ignore (run_with (`Pool 2) ~placement:[| 0 |] (build ()) [ 1 ] ~tuples:10 ~seed:3));
  Alcotest.check_raises "negative node"
    (Invalid_argument "Executor.run: placement nodes must be >= 0")
    (fun () ->
      ignore
        (run_with (`Pool 2) ~placement:[| 0; -1 |] (build ()) [ 1 ] ~tuples:10
           ~seed:3));
  (* More nodes than workers: groups collapse by modulo instead of
     starving a group of workers. *)
  let m =
    run_with (`Pool 2) ~placement:[| 0; 5 |] (build ()) [ 1 ] ~tuples:10 ~seed:3
  in
  Alcotest.(check bool) "collapsed placement finished" true
    (m.Executor.outcome = Supervision.Finished)

(* Channel equivalence: `Auto (SPSC rings on single-producer edges, the
   default above) must be observationally equivalent to forcing the locking
   mailbox everywhere, on both schedulers. *)
let check_channel_equivalence ?fused ?ordered ~name build vs ~tuples ~seed =
  List.iter
    (fun (sched_name, scheduler) ->
      let auto =
        run_with scheduler ~channels:`Auto ?fused ?ordered (build ()) vs
          ~tuples ~seed
      in
      let locking =
        run_with scheduler ~channels:`Locking ?fused ?ordered (build ()) vs
          ~tuples ~seed
      in
      let label s = Printf.sprintf "%s (%s): %s" name sched_name s in
      Alcotest.(check bool) (label "auto finished") true
        (auto.Executor.outcome = Supervision.Finished);
      Alcotest.(check (array int))
        (label "consumed, auto = locking")
        locking.Executor.consumed auto.Executor.consumed;
      Alcotest.(check (array int))
        (label "produced, auto = locking")
        locking.Executor.produced auto.Executor.produced)
    [ ("pool", `Pool 2); ("domains", `Domain_per_actor) ]

let test_channel_equivalence () =
  check_channel_equivalence ~name:"plain"
    (fun () ->
      Topology.create_exn
        [| op "src" 0.01; op "a" 0.01; op "b" 0.01; op "sink" 0.01 |]
        [ (0, 1, 0.3); (0, 2, 0.7); (1, 3, 1.0); (2, 3, 1.0) ])
    [ 1; 2; 3 ] ~tuples:1500 ~seed:7;
  check_channel_equivalence ~ordered:[ 1 ] ~name:"ordered fission"
    (fun () ->
      Topology.create_exn
        [|
          op "src" 0.01;
          Operator.make ~service_time:1e-5 ~replicas:3 "w";
          op "s1" 0.01;
          op "s2" 0.01;
        |]
        [ (0, 1, 1.0); (1, 2, 0.4); (1, 3, 0.6) ])
    [ 1; 2; 3 ] ~tuples:600 ~seed:13;
  check_channel_equivalence ~fused:[ [ 1; 2; 3 ] ] ~name:"fused"
    (fun () ->
      Topology.create_exn
        [| op "src" 0.01; op "fe" 0.01; op "l" 0.01; op "r" 0.01; op "sink" 0.01 |]
        [ (0, 1, 1.0); (1, 2, 0.5); (1, 3, 0.5); (2, 4, 1.0); (3, 4, 1.0) ])
    [ 1; 2; 3; 4 ] ~tuples:600 ~seed:17

let test_channel_failure_parity () =
  (* Failure injection must poison ring-backed edges exactly like locking
     ones: a failing operator yields the same structured outcome under every
     channel choice and scheduler. *)
  let t () =
    Topology.create_exn
      [| op "src" 0.01; op "bomb" 0.01; op "sink" 0.01 |]
      [ (0, 1, 1.0); (1, 2, 1.0) ]
  in
  let inputs = List.init 5000 (fun i -> tuple [| float_of_int i |]) in
  List.iter
    (fun scheduler ->
      List.iter
        (fun channels ->
          let m =
            with_watchdog (fun () ->
                Executor.run ~scheduler ~channels ~mailbox_capacity:4
                  ~source:(Executor.source_of_list inputs)
                  ~registry:
                    (registry_of
                       [ (1, bomb ~at:50.0); (2, Stateless_ops.identity) ])
                  (t ()))
          in
          match m.Executor.outcome with
          | Supervision.Actor_failed _ -> ()
          | outcome ->
              Alcotest.failf "expected Failed, got %a" Supervision.pp_outcome
                outcome)
        [ `Auto; `Locking ])
    [ `Pool 2; `Domain_per_actor ]

let test_batch_policies () =
  (* The drain policy is a scheduling knob: fixed and adaptive drains must
     deliver identical counts, and both bounds are validated. *)
  let build () =
    Topology.create_exn
      [| op "src" 0.01; op "a" 0.01; op "sink" 0.01 |]
      [ (0, 1, 1.0); (1, 2, 1.0) ]
  in
  let run batch =
    with_watchdog (fun () ->
        Executor.run ~scheduler:(`Pool 2) ~batch ~seed:3
          ~source:
            (Executor.source_of_fn ~count:800 (fun i ->
                 tuple [| float_of_int i |]))
          ~registry:(identity_registry [ 1; 2 ])
          (build ()))
  in
  let fixed = run (`Fixed 8) in
  let adaptive = run (`Adaptive 32) in
  Alcotest.(check bool) "fixed finished" true
    (fixed.Executor.outcome = Supervision.Finished);
  Alcotest.(check bool) "adaptive finished" true
    (adaptive.Executor.outcome = Supervision.Finished);
  Alcotest.(check (array int)) "consumed, fixed = adaptive"
    fixed.Executor.consumed adaptive.Executor.consumed;
  Alcotest.(check (array int)) "produced, fixed = adaptive"
    fixed.Executor.produced adaptive.Executor.produced;
  List.iter
    (fun batch ->
      Alcotest.check_raises "batch validated"
        (Invalid_argument "Executor.run: batch must be >= 1") (fun () ->
          ignore (run batch)))
    [ `Fixed 0; `Adaptive 0 ]

(* ------------------------------------------------------------------ *)
(* Telemetry: histogram algebra, scheduler equivalence of the recorded
   counters, and percentile sanity on a live run *)

module H = Ss_telemetry.Histogram

let test_histogram_buckets () =
  (* The inclusive upper bound of every bucket lands in that bucket, and
     anything above it lands in the next. *)
  Alcotest.(check int) "below base" 0 (H.bucket_index 1e-7);
  Alcotest.(check int) "at base" 0 (H.bucket_index 1e-6);
  for i = 1 to H.num_buckets - 2 do
    let upper = H.bucket_upper i in
    Alcotest.(check int) (Printf.sprintf "at upper(%d)" i) i
      (H.bucket_index upper);
    Alcotest.(check int)
      (Printf.sprintf "above upper(%d)" i)
      (i + 1)
      (H.bucket_index (upper *. 1.001))
  done;
  Alcotest.(check int) "overflow bucket" (H.num_buckets - 1)
    (H.bucket_index 1e9);
  Alcotest.(check bool) "overflow bound is infinite" true
    (H.bucket_upper (H.num_buckets - 1) = infinity);
  (* NaN and negatives are clamped into the first bucket, never dropped:
     a histogram count must stay in lockstep with the consumed counter. *)
  let h = H.create () in
  H.record h (-1.0);
  H.record h Float.nan;
  Alcotest.(check int) "clamped count" 2 (H.count h);
  Alcotest.(check int) "clamped into bucket 0" 2 (H.bucket_counts h).(0)

let random_histogram st n =
  let h = H.create () in
  for _ = 1 to n do
    (* log-uniform over ~9 decades: exercises every bucket region *)
    H.record h (1e-7 *. (10. ** Random.State.float st 9.0))
  done;
  h

let test_histogram_merge_associative () =
  let st = Random.State.make [| 42 |] in
  let a = random_histogram st 100 in
  let b = random_histogram st 57 in
  let c = random_histogram st 23 in
  let ab_c = H.merge (H.merge a b) c in
  let a_bc = H.merge a (H.merge b c) in
  Alcotest.(check (array int)) "bucket counts associative"
    (H.bucket_counts ab_c) (H.bucket_counts a_bc);
  Alcotest.(check int) "count associative" (H.count ab_c) (H.count a_bc);
  Alcotest.(check (float 1e-9)) "sum associative" (H.sum ab_c) (H.sum a_bc);
  Alcotest.(check (float 0.0)) "max associative" (H.max_value ab_c)
    (H.max_value a_bc);
  Alcotest.(check int) "operands untouched" 100 (H.count a);
  let into = H.copy a in
  H.merge_into ~into b;
  Alcotest.(check (array int)) "merge_into = merge"
    (H.bucket_counts (H.merge a b))
    (H.bucket_counts into)

let test_histogram_percentile_monotone () =
  let st = Random.State.make [| 7 |] in
  for _trial = 1 to 25 do
    let h = random_histogram st (1 + Random.State.int st 200) in
    let qs = [ 0.0; 0.1; 0.25; 0.5; 0.75; 0.9; 0.95; 0.99; 1.0 ] in
    ignore
      (List.fold_left
         (fun prev q ->
           let p = H.percentile h q in
           Alcotest.(check bool)
             (Printf.sprintf "p%g >= previous" (100. *. q))
             true (p >= prev);
           p)
         0.0 qs);
    Alcotest.(check bool) "p100 <= max" true
      (H.percentile h 1.0 <= H.max_value h)
  done;
  Alcotest.(check (float 0.0)) "empty histogram percentile" 0.0
    (H.percentile (H.create ()) 0.5)

let telemetry_instrument sample =
  {
    Executor.sample_occupancy = false;
    telemetry = true;
    telemetry_sample = sample;
  }

let run_telemetry scheduler ?fused ?ordered ?(sample = 1) topo vs ~tuples
    ~seed =
  with_watchdog (fun () ->
      Executor.run ~scheduler ?fused ?ordered ~seed
        ~instrument:(telemetry_instrument sample)
        ~source:
          (Executor.source_of_fn ~count:tuples (fun i ->
               tuple ~key:i [| float_of_int i |]))
        ~registry:(identity_registry vs) topo)

let report m = Option.get m.Executor.telemetry

(* Telemetry must not depend on the execution model: identical edge
   counts under both schedulers, and with [telemetry_sample = 1] the
   histogram counts track the consumed counters exactly. *)
let check_telemetry_equivalence ?fused ?ordered ~name build vs ~tuples ~seed
    =
  let topo = build () in
  let src = Topology.source topo in
  let pool = run_telemetry (`Pool 2) ?fused ?ordered (build ()) vs ~tuples ~seed in
  let legacy =
    run_telemetry `Domain_per_actor ?fused ?ordered (build ()) vs ~tuples ~seed
  in
  let r_pool = report pool and r_legacy = report legacy in
  Alcotest.(check (list (triple int int int)))
    (name ^ ": edge counts, pool = legacy")
    r_legacy.Ss_telemetry.Telemetry.edges r_pool.Ss_telemetry.Telemetry.edges;
  List.iter
    (fun (m, r, side) ->
      (* every consumed tuple entered over some edge *)
      let in_flow = Array.make (Topology.size topo) 0 in
      List.iter
        (fun (_, v, c) -> in_flow.(v) <- in_flow.(v) + c)
        r.Ss_telemetry.Telemetry.edges;
      Array.iteri
        (fun v c ->
          if v <> src then begin
            Alcotest.(check int)
              (Printf.sprintf "%s: %s in-edge flow of %d" name side v)
              c in_flow.(v);
            Alcotest.(check int)
              (Printf.sprintf "%s: %s latency count of %d" name side v)
              c
              (H.count r.Ss_telemetry.Telemetry.latency.(v));
            Alcotest.(check int)
              (Printf.sprintf "%s: %s service count of %d" name side v)
              c
              (H.count r.Ss_telemetry.Telemetry.service.(v))
          end)
        m.Executor.consumed)
    [ (pool, r_pool, "pool"); (legacy, r_legacy, "legacy") ]

let test_telemetry_equivalence_plain () =
  check_telemetry_equivalence ~name:"plain"
    (fun () ->
      Topology.create_exn
        [| op "src" 0.01; op "a" 0.01; op "b" 0.01; op "sink" 0.01 |]
        [ (0, 1, 0.3); (0, 2, 0.7); (1, 3, 1.0); (2, 3, 1.0) ])
    [ 1; 2; 3 ] ~tuples:600 ~seed:7

let test_telemetry_equivalence_fission () =
  check_telemetry_equivalence ~name:"fission"
    (fun () ->
      Topology.create_exn
        [|
          op "src" 0.01;
          Operator.make ~service_time:1e-5 ~replicas:3 "w";
          op "s1" 0.01;
          op "s2" 0.01;
        |]
        [ (0, 1, 1.0); (1, 2, 0.4); (1, 3, 0.6) ])
    [ 1; 2; 3 ] ~tuples:600 ~seed:11

let test_telemetry_equivalence_fused () =
  check_telemetry_equivalence ~fused:[ [ 1; 2; 3 ] ] ~name:"fused"
    (fun () ->
      Topology.create_exn
        [|
          op "src" 0.01;
          op "fe" 0.01;
          op "l" 0.01;
          op "r" 0.01;
          op "sink" 0.01;
        |]
        [ (0, 1, 1.0); (1, 2, 0.5); (1, 3, 0.5); (2, 4, 1.0); (3, 4, 1.0) ])
    [ 1; 2; 3; 4 ] ~tuples:600 ~seed:17

let test_telemetry_sampling_ratio () =
  (* With [telemetry_sample = k] on a single-actor vertex, histogram
     counts are exactly ceil (consumed / k); edge counters stay exact. *)
  let build () =
    Topology.create_exn
      [| op "src" 0.01; op "a" 0.01; op "sink" 0.01 |]
      [ (0, 1, 1.0); (1, 2, 1.0) ]
  in
  let tuples = 100 in
  let m =
    run_telemetry (`Pool 2) ~sample:3 (build ()) [ 1; 2 ] ~tuples ~seed:5
  in
  let r = report m in
  let ceil_div a b = (a + b - 1) / b in
  Array.iteri
    (fun v c ->
      if v <> 0 then begin
        Alcotest.(check int)
          (Printf.sprintf "sampled latency count of %d" v)
          (ceil_div c 3)
          (H.count r.Ss_telemetry.Telemetry.latency.(v));
        Alcotest.(check int)
          (Printf.sprintf "sampled service count of %d" v)
          (ceil_div c 3)
          (H.count r.Ss_telemetry.Telemetry.service.(v))
      end)
    m.Executor.consumed;
  List.iter
    (fun (_, _, c) -> Alcotest.(check int) "edges stay exact" tuples c)
    r.Ss_telemetry.Telemetry.edges

let busy_wait seconds =
  let t0 = Unix.gettimeofday () in
  while Unix.gettimeofday () -. t0 < seconds do
    ()
  done

(* A behavior whose service time follows a known skewed distribution:
   50% 10 us, 45% 100 us, 4% 400 us, 1% 3 ms by tuple key. The service
   percentiles of the telemetry report must be strictly ordered (the
   paper's latency plots are meaningless on a degenerate histogram). *)
let test_telemetry_percentiles scheduler () =
  let topo =
    Topology.create_exn
      [| op "src" 0.15; op "work" 0.1; op "sink" 0.01 |]
      [ (0, 1, 1.0); (1, 2, 1.0) ]
  in
  let skewed =
    Behavior.make ~name:"skewed" (fun () t ->
        let k = t.Tuple.key mod 100 in
        let us =
          if k < 50 then 10.0
          else if k < 95 then 100.0
          else if k < 99 then 400.0
          else 3000.0
        in
        busy_wait (us *. 1e-6);
        [ t ])
  in
  let m =
    with_watchdog (fun () ->
        Executor.run ~scheduler ~instrument:(telemetry_instrument 1)
          ~source:
            (Executor.source_of_fn ~count:200 (fun i ->
                 (* pace the source just above the mean service time so
                    queueing stays transient and ages reflect the work *)
                 busy_wait 150e-6;
                 tuple ~key:i [| float_of_int i |]))
          ~registry:(registry_of [ (1, skewed); (2, Stateless_ops.identity) ])
          topo)
  in
  Alcotest.(check bool) "finished" true
    (m.Executor.outcome = Supervision.Finished);
  let r = report m in
  let s = H.snapshot r.Ss_telemetry.Telemetry.service.(1) in
  Alcotest.(check int) "every invocation timed" 200 s.H.count;
  Alcotest.(check bool)
    (Printf.sprintf "service p50 %.0fus < p95 %.0fus" (s.H.p50 *. 1e6)
       (s.H.p95 *. 1e6))
    true (s.H.p50 < s.H.p95);
  Alcotest.(check bool)
    (Printf.sprintf "service p95 %.0fus < p99 %.0fus" (s.H.p95 *. 1e6)
       (s.H.p99 *. 1e6))
    true (s.H.p95 < s.H.p99);
  Alcotest.(check bool) "service p99 <= max" true (s.H.p99 <= s.H.max);
  let l = H.snapshot r.Ss_telemetry.Telemetry.latency.(2) in
  Alcotest.(check bool) "latency percentiles ordered" true
    (l.H.p50 <= l.H.p95 && l.H.p95 <= l.H.p99 && l.H.p99 <= l.H.max);
  Alcotest.(check bool)
    (Printf.sprintf "latency non-degenerate (p50 %.0fus, p99 %.0fus)"
       (l.H.p50 *. 1e6) (l.H.p99 *. 1e6))
    true
    (l.H.p50 < l.H.p99)

let test_telemetry_off_is_none () =
  let t =
    Topology.create_exn [| op "src" 0.01; op "sink" 0.01 |] [ (0, 1, 1.0) ]
  in
  let m =
    with_watchdog (fun () ->
        Executor.run
          ~source:
            (Executor.source_of_fn ~count:10 (fun i ->
                 tuple [| float_of_int i |]))
          ~registry:(identity_registry [ 1 ])
          t)
  in
  Alcotest.(check bool) "no report by default" true
    (m.Executor.telemetry = None)

let test_telemetry_sample_validated () =
  let t =
    Topology.create_exn [| op "src" 0.01; op "sink" 0.01 |] [ (0, 1, 1.0) ]
  in
  Alcotest.check_raises "zero sample"
    (Invalid_argument "Executor.run: telemetry_sample must be >= 1")
    (fun () ->
      ignore
        (Executor.run
           ~instrument:(telemetry_instrument 0)
           ~source:(Executor.source_of_list [])
           ~registry:(identity_registry [ 1 ])
           t))

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  (* Register one case per mailbox implementation behind the facade. *)
  let per_kind name f =
    List.map
      (fun (kind, create) ->
        quick (Printf.sprintf "%s (%s)" name kind) (f create))
      mailbox_kinds
  in
  Alcotest.run "ss_runtime"
    [
      ( "mailbox",
        List.concat
          [
            per_kind "fifo order" test_mailbox_fifo;
            per_kind "try operations" test_mailbox_try_operations;
            per_kind "blocking put (backpressure)" test_mailbox_blocking_put;
            per_kind "blocking take" test_mailbox_blocking_take;
            per_kind "invalid capacity" test_mailbox_invalid_capacity;
            per_kind "close wakes blocked producer"
              test_mailbox_close_wakes_producer;
            per_kind "close wakes blocked consumer"
              test_mailbox_close_wakes_consumer;
            per_kind "closed mailbox semantics" test_mailbox_closed_operations;
            per_kind "put_batch and try_put_chunk" test_mailbox_put_batch;
            [ QCheck_alcotest.to_alcotest test_mailbox_differential ];
          ] );
      ( "supervision",
        [
          quick "failing behavior, single actor" test_failure_single_actor;
          quick "failing behavior, fission" test_failure_replicated;
          quick "failing behavior, fused group" test_failure_fused;
          quick "timeout shuts the run down" test_timeout_shuts_down;
          quick "fault-free run fully completed" test_fault_free_run_reports_completed;
          quick "backpressure blocked-time metric" test_backpressure_is_measured;
        ] );
      ( "pipelines",
        [
          quick "identity pipeline" test_identity_pipeline;
          quick "filter counts" test_filter_counts;
          quick "probabilistic split" test_probabilistic_split_conserves_flow;
          quick "content-based router" test_content_based_router;
          quick "diamond" test_diamond_join_counts;
          quick "windowed operator" test_windowed_operator_in_pipeline;
          quick "capacity-1 mailboxes drain" test_small_mailboxes_still_drain;
        ] );
      ( "fission",
        [
          quick "replicated stateless" test_replicated_stateless;
          quick "partitioned key affinity" test_partitioned_key_affinity;
          quick "ordered fission preserves order" test_ordered_fission_preserves_order;
          quick "ordered fission with selectivity" test_ordered_fission_with_selectivity;
          quick "ordered fission validation" test_ordered_fission_validation;
        ] );
      ( "fusion",
        [
          quick "fused counts equal unfused" test_fused_group_equivalent_counts;
          quick "fused branching group" test_fused_branching_group;
          quick "illegal groups rejected" test_fused_errors;
        ] );
      ( "sched mailbox",
        List.concat
          [
            per_kind "take_batch" test_mailbox_take_batch;
            per_kind "take_batch wakes blocked producer"
              test_take_batch_wakes_blocked_producer;
            per_kind "waiter registration protocol"
              test_mailbox_waiter_registration;
            per_kind "parked task wakes on close"
              test_sched_parked_wakeup_on_close;
          ] );
      ( "sched",
        [
          quick "failure outcome parity" test_pool_failure_parity;
          quick "timeout outcome parity" test_pool_timeout_parity;
          quick "occupancy sampling gated" test_sample_occupancy_gating;
          quick "pool scales past the domain budget"
            test_pool_scales_past_domain_budget;
        ] );
      ( "equivalence",
        [
          quick "plain topology" test_equivalence_plain;
          quick "fission" test_equivalence_fission;
          quick "ordered fission" test_equivalence_ordered_fission;
          quick "fused group" test_equivalence_fused;
          quick "placement assignment" test_equivalence_placement_assignment;
          quick "placement validation" test_placement_validation;
          quick "channels auto = locking" test_channel_equivalence;
          quick "channel failure parity" test_channel_failure_parity;
          quick "batch policies" test_batch_policies;
        ] );
      ( "telemetry",
        [
          quick "histogram bucket boundaries" test_histogram_buckets;
          quick "histogram merge associative" test_histogram_merge_associative;
          quick "histogram percentiles monotone"
            test_histogram_percentile_monotone;
          quick "counters, plain topology" test_telemetry_equivalence_plain;
          quick "counters, fission" test_telemetry_equivalence_fission;
          quick "counters, fused group" test_telemetry_equivalence_fused;
          quick "1-in-k sampling ratio" test_telemetry_sampling_ratio;
          quick "percentiles non-degenerate (pool)"
            (test_telemetry_percentiles (`Pool 2));
          quick "percentiles non-degenerate (domains)"
            (test_telemetry_percentiles `Domain_per_actor);
          quick "off by default" test_telemetry_off_is_none;
          quick "sample ratio validated" test_telemetry_sample_validated;
        ] );
      ( "misc",
        [
          quick "replicated source rejected" test_replicated_source_rejected;
          quick "source_of_fn" test_source_of_fn;
          quick "source_throttled deficit catch-up"
            test_source_throttled_deficit_catchup;
        ] );
    ]
