(* Scheduler-core tests: the Chase–Lev lock-free pool and the retained
   locked baseline, exercised directly (without the executor) through
   spawn/suspend/resume/yield storms across worker counts and group
   shapes. The invariants under test: every spawned task runs exactly
   once (no lost or double-run tasks), the pool drains, the first error
   propagates out of [run], group validation, and the prompt-finish tick
   contract. *)

module Sched = Ss_sched.Sched

(* A wedged scheduler would hang the test binary (workers parked forever,
   [run] never returns); the watchdog turns that into a prompt exit. *)
let with_watchdog ?(limit = 60.0) f =
  let result = Atomic.make None in
  let d =
    Domain.spawn (fun () ->
        Atomic.set result (Some (try Ok (f ()) with e -> Error e)))
  in
  let t0 = Unix.gettimeofday () in
  let rec wait () =
    match Atomic.get result with
    | Some r -> (
        Domain.join d;
        match r with Ok v -> v | Error e -> raise e)
    | None ->
        if Unix.gettimeofday () -. t0 > limit then begin
          prerr_endline "watchdog: scheduler hung; killing test binary";
          Unix._exit 125
        end;
        Unix.sleepf 0.01;
        wait ()
  in
  wait ()

(* External resume source: a domain that fires registered wakeups from
   outside the pool, exercising the injection path and the parked-worker
   wakeup protocol. *)
let with_firer f =
  let q = Queue.create () in
  let m = Mutex.create () in
  let stop = Atomic.make false in
  let push resume =
    Mutex.lock m;
    Queue.push resume q;
    Mutex.unlock m
  in
  let d =
    Domain.spawn (fun () ->
        let rec loop () =
          let r =
            Mutex.lock m;
            let r = Queue.take_opt q in
            Mutex.unlock m;
            r
          in
          match r with
          | Some resume ->
              resume ();
              loop ()
          | None ->
              if not (Atomic.get stop) then begin
                Unix.sleepf 0.0005;
                loop ()
              end
        in
        loop ())
  in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop true;
      Domain.join d)
    (fun () -> f push)

let impls = [ ("lockfree", `Lockfree); ("locked", `Locked) ]

(* ------------------------------------------------------------------ *)
(* Shape and validation *)

let test_shape_validation () =
  List.iter
    (fun (_, impl) ->
      Alcotest.check_raises "empty groups" (Invalid_argument
        "Sched.create: groups must be non-empty") (fun () ->
          ignore (Sched.create ~groups:[||] ~impl ()));
      Alcotest.check_raises "zero-sized group" (Invalid_argument
        "Sched.create: every group needs at least one worker") (fun () ->
          ignore (Sched.create ~groups:[| 2; 0 |] ~impl ()));
      Alcotest.check_raises "workers <> sum of groups" (Invalid_argument
        "Sched.create: workers must equal the sum of groups") (fun () ->
          ignore (Sched.create ~workers:4 ~groups:[| 2; 1 |] ~impl ()));
      Alcotest.check_raises "workers < 1" (Invalid_argument
        "Sched.create: workers must be >= 1") (fun () ->
          ignore (Sched.create ~workers:0 ~impl ()));
      let t = Sched.create ~groups:[| 2; 1 |] ~impl () in
      Alcotest.(check int) "workers = sum of groups" 3 (Sched.workers t);
      Alcotest.(check (array int)) "groups reported" [| 2; 1 |] (Sched.groups t);
      Alcotest.check_raises "spawn group out of range" (Invalid_argument
        "Sched.spawn: group out of range") (fun () ->
          Sched.spawn ~group:2 t (fun () -> ()));
      let ungrouped = Sched.create ~workers:2 ~impl () in
      Alcotest.(check (array int))
        "default shape is one group" [| 2 |] (Sched.groups ungrouped))
    impls

(* ------------------------------------------------------------------ *)
(* Exactly-once execution *)

let run_counting ~impl ~workers ?groups ~tasks body_of =
  let cells = Array.init tasks (fun _ -> Atomic.make 0) in
  let pool = Sched.create ~workers ?groups ~impl () in
  for i = 0 to tasks - 1 do
    let group =
      match groups with Some gs -> Some (i mod Array.length gs) | None -> None
    in
    Sched.spawn ?group pool (fun () ->
        body_of i;
        Atomic.incr cells.(i))
  done;
  with_watchdog (fun () -> Sched.run pool);
  Array.iteri
    (fun i c ->
      Alcotest.(check int) (Printf.sprintf "task %d ran exactly once" i) 1
        (Atomic.get c))
    cells

let test_basic_drain () =
  List.iter
    (fun (_, impl) ->
      List.iter
        (fun workers ->
          run_counting ~impl ~workers ~tasks:64 (fun _ -> ()))
        [ 1; 2; 4 ])
    impls

let test_deque_growth () =
  (* 500 initial tasks on a single worker overflow the 64-slot initial
     ring several times; every yield re-enqueues through the grown
     buffer. *)
  List.iter
    (fun (_, impl) ->
      run_counting ~impl ~workers:1 ~tasks:500 (fun _ ->
          for _ = 1 to 3 do
            Sched.yield ()
          done))
    impls

let test_grouped_drain () =
  List.iter
    (fun (_, impl) ->
      run_counting ~impl ~workers:3 ~groups:[| 2; 1 |] ~tasks:100 (fun _ ->
          Sched.yield ()))
    impls

let test_nested_spawn () =
  (* Tasks spawned from inside running tasks (inheriting the spawning
     worker's group) must also run exactly once. *)
  List.iter
    (fun (_, impl) ->
      let children = 40 in
      let cells = Array.init children (fun _ -> Atomic.make 0) in
      let pool = Sched.create ~workers:2 ~groups:[| 1; 1 |] ~impl () in
      Sched.spawn pool (fun () ->
          for i = 0 to children - 1 do
            Sched.spawn pool (fun () ->
                Sched.yield ();
                Atomic.incr cells.(i))
          done);
      with_watchdog (fun () -> Sched.run pool);
      Array.iteri
        (fun i c ->
          Alcotest.(check int)
            (Printf.sprintf "child %d ran exactly once" i)
            1 (Atomic.get c))
        cells)
    impls

(* ------------------------------------------------------------------ *)
(* Suspension across domains: mass-park then external wakeups, the
   worst case for the wake-one protocol (a lost wakeup deadlocks). *)

let test_external_resume_storm () =
  List.iter
    (fun (_, impl) ->
      with_firer (fun fire ->
          run_counting ~impl ~workers:4 ~groups:[| 2; 2 |] ~tasks:100
            (fun _ ->
              for _ = 1 to 2 do
                Sched.suspend ~register:(fun resume ->
                    fire resume;
                    true)
              done)))
    impls

let test_register_false_continues () =
  List.iter
    (fun (_, impl) ->
      run_counting ~impl ~workers:2 ~tasks:10 (fun _ ->
          (* The awaited condition already holds: the task continues
             without parking. *)
          Sched.suspend ~register:(fun _resume -> false)))
    impls

(* ------------------------------------------------------------------ *)
(* Error propagation: [run] re-raises the first escaping exception after
   the pool drains, and the other tasks still complete. *)

let test_error_propagation () =
  List.iter
    (fun (_, impl) ->
      let ran = Array.init 20 (fun _ -> Atomic.make 0) in
      let pool = Sched.create ~workers:2 ~impl () in
      for i = 0 to 19 do
        Sched.spawn pool (fun () ->
            Sched.yield ();
            Atomic.incr ran.(i);
            if i = 7 then failwith "storm")
      done;
      (match with_watchdog (fun () -> Sched.run pool) with
      | () -> Alcotest.fail "expected run to re-raise the task error"
      | exception Failure msg ->
          Alcotest.(check string) "first error propagated" "storm" msg);
      Array.iteri
        (fun i c ->
          Alcotest.(check int)
            (Printf.sprintf "task %d still ran" i)
            1 (Atomic.get c))
        ran)
    impls

(* ------------------------------------------------------------------ *)
(* Prompt finish under ?tick: the pool completing must interrupt the
   tick sleep instead of waiting out the full interval. *)

let test_tick_prompt_finish () =
  List.iter
    (fun (name, impl) ->
      let pool = Sched.create ~workers:2 ~impl () in
      let ticks = ref 0 in
      (* Long enough that the runner reaches the tick loop while the pool
         is still busy (so [fn] observably runs), far shorter than the
         interval (so a prompt return proves the sleep was interrupted). *)
      Sched.spawn pool (fun () -> Unix.sleepf 0.1);
      let t0 = Unix.gettimeofday () in
      with_watchdog (fun () ->
          Sched.run ~tick:(5.0, fun () -> incr ticks) pool);
      let elapsed = Unix.gettimeofday () -. t0 in
      Alcotest.(check bool)
        (Printf.sprintf "%s: finish interrupts the 5s tick (took %.3fs)" name
           elapsed)
        true (elapsed < 2.5);
      Alcotest.(check bool) "tick ran at least once" true (!ticks >= 1))
    impls

(* ------------------------------------------------------------------ *)
(* Randomized storms: arbitrary mixes of yields, immediate suspends,
   externally-resumed suspends and nested spawns over random worker
   counts and group shapes — exactly-once execution and drain must hold
   for both implementations. *)

type script = { yields : int; suspends : int; immediates : int; children : int }

let script_gen =
  QCheck.Gen.(
    map
      (fun (yields, suspends, immediates, children) ->
        { yields; suspends; immediates; children })
      (quad (int_bound 3) (int_bound 2) (int_bound 1) (int_bound 2)))

let shape_gen =
  (* (workers, groups option): group sizes always sum to workers. *)
  QCheck.Gen.(
    int_range 1 4 >>= fun workers ->
    oneof
      [
        return (workers, None);
        ( int_range 1 workers >>= fun ngroups ->
          let sizes = Array.make ngroups 1 in
          let rec distribute k gen =
            if k = 0 then return sizes
            else
              int_bound (ngroups - 1) >>= fun g ->
              sizes.(g) <- sizes.(g) + 1;
              distribute (k - 1) gen
          in
          map (fun sizes -> (workers, Some sizes)) (distribute (workers - ngroups) ()) );
      ])

let storm_case impl =
  QCheck.Test.make ~count:25
    ~name:
      (Printf.sprintf "storm: exactly-once execution and drain (%s)"
         (match impl with `Lockfree -> "lockfree" | `Locked -> "locked"))
    (QCheck.make
       QCheck.Gen.(pair shape_gen (list_size (int_range 1 40) script_gen)))
    (fun ((workers, groups), scripts) ->
      let n = List.length scripts in
      let total_children =
        List.fold_left (fun acc s -> acc + s.children) 0 scripts
      in
      let cells = Array.init n (fun _ -> Atomic.make 0) in
      let child_cells = Array.init (max 1 total_children) (fun _ -> Atomic.make 0) in
      let next_child = Atomic.make 0 in
      with_firer (fun fire ->
          let pool = Sched.create ~workers ?groups ~impl () in
          let ngroups = Array.length (Sched.groups pool) in
          List.iteri
            (fun i s ->
              Sched.spawn ~group:(i mod ngroups) pool (fun () ->
                  for _ = 1 to s.yields do
                    Sched.yield ()
                  done;
                  for _ = 1 to s.immediates do
                    Sched.suspend ~register:(fun _ -> false)
                  done;
                  for _ = 1 to s.suspends do
                    Sched.suspend ~register:(fun resume ->
                        fire resume;
                        true)
                  done;
                  for c = 1 to s.children do
                    let slot = Atomic.fetch_and_add next_child 1 in
                    Sched.spawn
                      ~group:((i + c) mod ngroups)
                      pool
                      (fun () ->
                        Sched.yield ();
                        Atomic.incr child_cells.(slot))
                  done;
                  Atomic.incr cells.(i)))
            scripts;
          with_watchdog (fun () -> Sched.run pool));
      Array.for_all (fun c -> Atomic.get c = 1) cells
      && Array.for_all (fun c -> Atomic.get c = 1)
           (Array.sub child_cells 0 total_children))

let () =
  let quick name fn = Alcotest.test_case name `Quick fn in
  Alcotest.run "ss_sched"
    [
      ( "shape",
        [
          quick "validation and accessors" test_shape_validation;
        ] );
      ( "exactly-once",
        [
          quick "basic drain" test_basic_drain;
          quick "deque growth" test_deque_growth;
          quick "grouped drain" test_grouped_drain;
          quick "nested spawn" test_nested_spawn;
          quick "external resume storm" test_external_resume_storm;
          quick "register false continues" test_register_false_continues;
        ] );
      ( "semantics",
        [
          quick "error propagation" test_error_propagation;
          quick "tick prompt finish" test_tick_prompt_finish;
        ] );
      ( "storm",
        [
          QCheck_alcotest.to_alcotest (storm_case `Lockfree);
          QCheck_alcotest.to_alcotest (storm_case `Locked);
        ] );
    ]
