(* Tests for the event-time tier: watermark generators, the evented
   window behavior, lateness policies, the cost-model hooks and the
   end-to-end watermark protocol through fission and live resizes. *)

open Ss_topology
open Ss_operators
open Ss_event
open Ss_runtime

let tuple ?(ts = 0.0) ?(key = 0) ?(tag = 0) values =
  Tuple.make ~ts ~key ~tag values

let evented_of behavior =
  match behavior.Behavior.evented with
  | Some mk -> mk ()
  | None -> Alcotest.fail "behavior is not evented"

(* ------------------------------------------------------------------ *)
(* Watermark generators *)

let test_bounded_watermark () =
  let g = Watermark.create ~min_advance:0.0 (Watermark.Bounded 1.0) in
  Alcotest.(check bool) "starts at -inf" true
    (Watermark.current g = neg_infinity);
  Alcotest.(check (option (float 1e-9))) "lags by the bound" (Some 1.0)
    (Watermark.observe g 2.0);
  Alcotest.(check (option (float 1e-9))) "no advance on regression" None
    (Watermark.observe g 1.5);
  Alcotest.(check (option (float 1e-9))) "advances with the max" (Some 2.0)
    (Watermark.observe g 3.0);
  Alcotest.(check (float 1e-9)) "current tracks emissions" 2.0
    (Watermark.current g)

let test_bounded_min_advance_throttle () =
  let g = Watermark.create ~min_advance:0.5 (Watermark.Bounded 0.0) in
  Alcotest.(check (option (float 1e-9))) "first emission" (Some 1.0)
    (Watermark.observe g 1.0);
  Alcotest.(check (option (float 1e-9))) "below the quantum" None
    (Watermark.observe g 1.4);
  Alcotest.(check (option (float 1e-9))) "quantum reached" (Some 1.5)
    (Watermark.observe g 1.5)

let test_periodic_watermark () =
  let g = Watermark.create (Watermark.Periodic 1.0) in
  Alcotest.(check (option (float 1e-9))) "emits on first event" (Some 0.2)
    (Watermark.observe g 0.2);
  Alcotest.(check (option (float 1e-9))) "paced by the interval" None
    (Watermark.observe g 0.9);
  Alcotest.(check (option (float 1e-9))) "interval elapsed" (Some 1.3)
    (Watermark.observe g 1.3)

let test_watermark_parse_roundtrip () =
  List.iter
    (fun g ->
      match Watermark.parse (Watermark.to_string g) with
      | Ok g' -> Alcotest.(check bool) "roundtrip" true (g = g')
      | Error e -> Alcotest.fail e)
    [ Watermark.Periodic 0.05; Watermark.Bounded 0.1; Watermark.Bounded 0.0 ];
  (match Watermark.parse "bounded:-1" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "negative bound accepted");
  match Watermark.parse "nonsense" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage accepted"

let test_watermark_invalid_args () =
  Alcotest.check_raises "non-positive interval"
    (Invalid_argument "Watermark.create: periodic interval must be positive")
    (fun () -> ignore (Watermark.create (Watermark.Periodic 0.0)));
  Alcotest.check_raises "negative bound"
    (Invalid_argument "Watermark.create: lateness bound must be non-negative")
    (fun () -> ignore (Watermark.create (Watermark.Bounded (-1.0))))

(* ------------------------------------------------------------------ *)
(* Evented window behavior *)

let flush e = e.Behavior.on_watermark infinity

let test_event_window_fire_order () =
  let e = evented_of (Event_window.behavior ~length:1.0 ~slide:1.0 ()) in
  (* two keys in window [0,1), one in [1,2), fed out of order *)
  ignore (e.Behavior.efn (tuple ~ts:1.3 ~key:0 [| 5.0 |]));
  ignore (e.Behavior.efn (tuple ~ts:0.4 ~key:1 [| 2.0 |]));
  ignore (e.Behavior.efn (tuple ~ts:0.2 ~key:0 [| 1.0 |]));
  ignore (e.Behavior.efn (tuple ~ts:0.7 ~key:0 [| 3.0 |]));
  Alcotest.(check int) "efn buffers, emits nothing" 0
    (List.length (e.Behavior.efn (tuple ~ts:0.9 ~key:1 [| 1.0 |])));
  let fired = e.Behavior.on_watermark 1.0 in
  Alcotest.(check (list (pair (float 1e-9) (pair int (float 1e-9)))))
    "first window fires per key, ordered by (end, key)"
    [ (1.0, (0, 4.0)); (1.0, (1, 3.0)) ]
    (List.map (fun t -> (t.Tuple.ts, (t.Tuple.key, Tuple.value t 0))) fired);
  Alcotest.(check int) "monotone-safe: repeat fires nothing" 0
    (List.length (e.Behavior.on_watermark 1.0));
  Alcotest.(check int) "monotone-safe: regression fires nothing" 0
    (List.length (e.Behavior.on_watermark 0.5));
  let rest = flush e in
  Alcotest.(check (list (pair (float 1e-9) (pair int (float 1e-9)))))
    "end-of-stream flush drains the open window"
    [ (2.0, (0, 5.0)) ]
    (List.map (fun t -> (t.Tuple.ts, (t.Tuple.key, Tuple.value t 0))) rest)

let test_event_window_fires_again_after_firing () =
  (* Guards the cached next-fire fast path: firing must re-arm it so later
     windows still fire. *)
  let e = evented_of (Event_window.behavior ~agg:Count ~length:1.0 ~slide:1.0 ()) in
  ignore (e.Behavior.efn (tuple ~ts:0.5 [| 1.0 |]));
  Alcotest.(check int) "first window" 1
    (List.length (e.Behavior.on_watermark 1.0));
  ignore (e.Behavior.efn (tuple ~ts:1.5 [| 1.0 |]));
  ignore (e.Behavior.efn (tuple ~ts:2.5 [| 1.0 |]));
  Alcotest.(check int) "second window after re-arming" 1
    (List.length (e.Behavior.on_watermark 2.0));
  Alcotest.(check int) "flush fires the rest" 1 (List.length (flush e))

let test_event_window_refire_retraction () =
  let e = evented_of (Event_window.behavior ~length:1.0 ~slide:1.0 ()) in
  ignore (e.Behavior.efn (tuple ~ts:0.2 ~key:3 [| 1.0 |]));
  ignore (e.Behavior.on_watermark 1.5);
  let correction = e.Behavior.on_late (tuple ~ts:0.5 ~key:3 [| 2.0 |]) in
  Alcotest.(check (list (pair int (float 1e-9))))
    "retraction of the stale sum, then the corrected sum"
    [ (Event_window.retraction_tag, 1.0); (0, 3.0) ]
    (List.map (fun t -> (t.Tuple.tag, Tuple.value t 0)) correction);
  (* a straggler into a still-open window is absorbed silently *)
  Alcotest.(check int) "open-window straggler absorbed" 0
    (List.length (e.Behavior.on_late (tuple ~ts:1.8 ~key:3 [| 4.0 |])));
  Alcotest.(check (list (float 1e-9))) "absorbed value counted at flush"
    [ 4.0 ]
    (List.map (fun t -> Tuple.value t 0) (flush e))

let test_event_window_refire_horizon () =
  let e =
    evented_of
      (Event_window.behavior ~refire_horizon:1.0 ~length:1.0 ~slide:1.0 ())
  in
  ignore (e.Behavior.efn (tuple ~ts:0.5 [| 1.0 |]));
  ignore (e.Behavior.on_watermark 1.0);
  ignore (e.Behavior.on_watermark 2.5);
  (* window end 1.0 is now behind wm - horizon = 1.5: unrecoverable *)
  Alcotest.(check int) "beyond the horizon: no correction" 0
    (List.length (e.Behavior.on_late (tuple ~ts:0.6 [| 2.0 |])))

let test_event_window_export_import () =
  let behavior = Event_window.behavior ~length:1.0 ~slide:0.5 () in
  let a = evented_of behavior in
  ignore (a.Behavior.efn (tuple ~ts:0.3 ~key:1 [| 1.0 |]));
  ignore (a.Behavior.efn (tuple ~ts:0.7 ~key:2 [| 2.0 |]));
  ignore (a.Behavior.on_watermark 0.5);
  let b = evented_of behavior in
  b.Behavior.eimport (a.Behavior.eexport ());
  let show e =
    List.map
      (fun t -> (t.Tuple.ts, t.Tuple.key, Tuple.value t 0))
      (flush e)
  in
  Alcotest.(check (list (triple (float 1e-9) int (float 1e-9))))
    "imported instance flushes exactly what the original would" (show a)
    (show b)

let test_event_window_of_name () =
  (match Event_window.of_name "ewin_w1000_s500" with
  | Some b -> Alcotest.(check string) "keeps the name" "ewin_w1000_s500"
      b.Behavior.name
  | None -> Alcotest.fail "valid class rejected");
  Alcotest.(check bool) "bare ewin" true (Event_window.of_name "ewin" <> None);
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " rejected") true
        (Event_window.of_name n = None))
    [ "ewin_wx_s1"; "ewin_w0_s0"; "ewin_w500_s1000"; "window"; "ewin_w1_1" ]

let test_event_window_of_name_strict () =
  (* The numeric parts are parsed strictly: everything float_of_string
     would also take — underscores, hex, exponents, signs, nan/infinity —
     must be rejected, as must trailing garbage and non-positive sizes. *)
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " rejected") true
        (Event_window.of_name n = None))
    [
      "ewin_w1_0_s5";
      "ewin_w1e3_s10";
      "ewin_w0x1A_s10";
      "ewin_winfinity_s5";
      "ewin_wnan_s5";
      "ewin_w-5_s1";
      "ewin_w10_s-1";
      "ewin_w10_s5_";
      "ewin_w10_s5x";
      "ewin_w10_s5_junk";
      "ewin_w._s.";
      "ewin_w_s";
      "ewin_w10_s0";
      "ewin_w0_s10";
      "ewin_w1.2.3_s1";
    ];
  (* decimals stay accepted *)
  Alcotest.(check bool) "decimal sizes accepted" true
    (Event_window.of_name "ewin_w1000.5_s250.25" <> None)

let prop_event_window_name_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:100 ~name:"name -> window -> name round-trip"
       (QCheck.make
          QCheck.Gen.(pair (int_range 1 100000) (int_range 1 100000)))
       (fun (a, b) ->
         let length = max a b and slide = min a b in
         let name = Printf.sprintf "ewin_w%d_s%d" length slide in
         match Event_window.of_name name with
         | Some behavior -> behavior.Behavior.name = name
         | None -> false))

(* ------------------------------------------------------------------ *)
(* Cost-model hooks *)

let test_event_model_selectivity () =
  Alcotest.(check (float 1e-9)) "keys/(rate*slide)" 0.064
    (Event_model.firing_selectivity ~keys:64 ~rate:1000.0 ~slide:1.0);
  Alcotest.(check (float 1e-9)) "predicted firing rate" 64.0
    (Event_model.predicted_output_rate ~keys:64 ~rate:1000.0 ~slide:1.0 ());
  Alcotest.(check (float 1e-9)) "late fraction scales it" 32.0
    (Event_model.predicted_output_rate ~keys:64 ~rate:1000.0 ~slide:1.0
       ~late_fraction:0.5 ())

let test_event_model_late_fraction () =
  (* 0.0 1.0 2.0 then a straggler 0.5: behind max 2.0 by 1.5 > bound 1.0 *)
  let ts l = List.map (fun t -> tuple ~ts:t [| 0.0 |]) l in
  Alcotest.(check (float 1e-9)) "one straggler in four" 0.25
    (Event_model.late_fraction ~bound:1.0 (ts [ 0.0; 1.0; 2.0; 0.5 ]));
  Alcotest.(check (float 1e-9)) "within bound" 0.0
    (Event_model.late_fraction ~bound:2.0 (ts [ 0.0; 1.0; 2.0; 0.5 ]));
  Alcotest.(check (float 1e-9)) "empty" 0.0
    (Event_model.late_fraction ~bound:1.0 [])

(* ------------------------------------------------------------------ *)
(* Lateness policies & dead letters *)

let test_lateness_parse () =
  List.iter
    (fun (s, k) ->
      match Lateness.parse_kind s with
      | Ok k' -> Alcotest.(check bool) s true (k = k')
      | Error e -> Alcotest.fail e)
    [ ("drop", `Drop); ("side", `Side); ("refire", `Refire) ];
  (match Lateness.parse_kind "bogus" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage accepted");
  match Lateness.of_kind `Drop with
  | Lateness.Drop -> ()
  | _ -> Alcotest.fail "of_kind `Drop"

let test_dead_letter_store () =
  let dl = Dead_letter.create () in
  Alcotest.(check int) "empty" 0 (Dead_letter.count dl);
  Dead_letter.add dl (tuple ~ts:1.0 [| 1.0 |]);
  Dead_letter.add dl (tuple ~ts:2.0 [| 2.0 |]);
  Alcotest.(check int) "count" 2 (Dead_letter.count dl);
  Alcotest.(check (list (float 1e-9))) "arrival order" [ 1.0; 2.0 ]
    (List.map (fun t -> t.Tuple.ts) (Dead_letter.items dl))

(* ------------------------------------------------------------------ *)
(* End-to-end: watermark protocol through the executor *)

let uniform_keys n = Ss_prelude.Discrete.uniform n

(* A paced in-memory source over a pre-built arrival-ordered stream. *)
let source_of stream =
  let tuples = ref stream in
  fun () ->
    match !tuples with
    | [] -> None
    | t :: rest ->
        tuples := rest;
        Some t

let disordered_stream ?(seed = 11) ?(keys = 8) n =
  let rng = Ss_prelude.Rng.create seed in
  let spec =
    { Ss_workload.Stream_gen.default_spec with keys = uniform_keys keys }
  in
  Ss_workload.Stream_gen.reorder rng
    (Ss_workload.Stream_gen.Bursty { burst = 32; period = 256 })
    (Ss_workload.Stream_gen.tuples ~spec rng n)

(* Fission + event time: a replicated partitioned-stateful window between
   source and sink. The collector merges watermarks across replicas
   (minimum), so no window fires before every replica's input reached its
   end — mass conservation below fails if it ever does. *)
let test_fission_zero_on_time_loss () =
  let n = 4000 and keys = 8 in
  let ops =
    [|
      Operator.source ~rate:1000.0 "src";
      Operator.make
        ~kind:(Operator.Partitioned_stateful (uniform_keys keys))
        ~replicas:3 ~service_time:1e-5 "win";
      Operator.make ~service_time:1e-6 "snk";
    |]
  in
  let topo = Topology.create_exn ops [ (0, 1, 1.0); (1, 2, 1.0) ] in
  let window = Event_window.behavior ~agg:Count ~length:1.0 ~slide:1.0 () in
  let sunk = Atomic.make 0 in
  let sink =
    Behavior.make ~name:"count_sink" (fun () ->
        fun t ->
          if t.Tuple.tag = 0 then
            ignore
              (Atomic.fetch_and_add sunk
                 (int_of_float (Tuple.value t 0)));
          [])
  in
  let registry = function 1 -> window | _ -> sink in
  let m =
    Executor.run
      ~event_time:(Event_time.config (Watermark.Bounded 0.1))
      ~timeout:60.0 ~source:(source_of (disordered_stream ~keys n)) ~registry
      topo
  in
  Alcotest.(check bool) "finished" true
    (m.Executor.outcome = Supervision.Finished);
  Alcotest.(check int) "no on-time tuple declared late" 0
    (Array.fold_left ( + ) 0 m.Executor.late);
  Alcotest.(check int) "every tuple counted by some fired window" n
    (Atomic.get sunk)

(* An evented sink that records every watermark the runtime delivers. *)
let recording_sink recorded =
  let mutex = Mutex.create () in
  Behavior.make_evented ~name:"wm_probe" (fun () ->
      {
        Behavior.efn = (fun _ -> []);
        on_watermark =
          (fun w ->
            Mutex.lock mutex;
            recorded := w :: !recorded;
            Mutex.unlock mutex;
            []);
        on_late = (fun _ -> []);
        eexport = (fun () -> []);
        eimport = (fun _ -> ());
      })

let strictly_increasing l =
  let rec go = function
    | a :: (b :: _ as rest) -> a < b && go rest
    | _ -> true
  in
  go l

(* qcheck property: however the stream is disordered, the watermark
   sequence delivered downstream of a parallel fission stage is strictly
   increasing and ends with the end-of-stream flush (infinity). *)
let prop_fission_watermark_monotone =
  QCheck.Test.make ~count:8 ~name:"fission watermarks monotone"
    QCheck.(pair small_nat (int_range 1 3))
    (fun (seed, replicas) ->
      let ops =
        [|
          Operator.source ~rate:2000.0 "src";
          Operator.make ~replicas ~service_time:1e-6 "map";
          Operator.make ~service_time:1e-6 "probe";
        |]
      in
      let topo = Topology.create_exn ops [ (0, 1, 1.0); (1, 2, 1.0) ] in
      let recorded = ref [] in
      let identity = Behavior.make ~name:"identity" (fun () -> fun t -> [ t ]) in
      let registry = function 2 -> recording_sink recorded | _ -> identity in
      let m =
        Executor.run
          ~event_time:(Event_time.config (Watermark.Bounded 0.05))
          ~timeout:60.0
          ~source:(source_of (disordered_stream ~seed:(seed + 1) 1500))
          ~registry topo
      in
      let wms = List.rev !recorded in
      m.Executor.outcome = Supervision.Finished
      && wms <> []
      && strictly_increasing wms
      && List.nth wms (List.length wms - 1) = infinity)

(* qcheck property: window firings are a pure function of the tuple SET —
   feeding any permutation (here: sorted by value, reversed) into a fresh
   instance and flushing yields identical firings. Values are small
   integers so float accumulation is exact in any order. *)
let prop_window_firing_deterministic =
  let arb =
    QCheck.(
      list_of_size Gen.(int_range 1 60)
        (triple (int_bound 4) (float_bound_inclusive 5.0) (int_bound 100)))
  in
  QCheck.Test.make ~count:50 ~name:"window firings order-independent" arb
    (fun entries ->
      let behavior = Event_window.behavior ~length:1.0 ~slide:0.5 () in
      let run order =
        let e = evented_of behavior in
        List.iter
          (fun (key, ts, v) ->
            ignore (e.Behavior.efn (tuple ~ts ~key [| float_of_int v |])))
          order;
        flush e
      in
      let a = run entries
      and b = run (List.rev entries)
      and c =
        run (List.sort (fun (_, _, v1) (_, _, v2) -> compare v1 v2) entries)
      in
      List.equal Tuple.equal a b && List.equal Tuple.equal a c)

(* Live resize with event time: watermark floors hand off through the
   swap, so a mid-stream degree change loses no on-time tuple and keeps
   the Count mass balance exact. *)
let test_live_resize_event_time () =
  let n = 12000 and keys = 8 in
  let ops =
    [|
      Operator.source ~rate:10000.0 "src";
      Operator.with_replicas
        (Operator.make
           ~kind:(Operator.Partitioned_stateful (uniform_keys keys))
           ~service_time:1e-5 "win")
        2;
      Operator.make ~service_time:1e-6 "snk";
    |]
  in
  let topo = Topology.create_exn ops [ (0, 1, 1.0); (1, 2, 1.0) ] in
  let window = Event_window.behavior ~agg:Count ~length:1.0 ~slide:1.0 () in
  let sunk = Atomic.make 0 in
  let sink =
    Behavior.make ~name:"count_sink" (fun () ->
        fun t ->
          if t.Tuple.tag = 0 then
            ignore
              (Atomic.fetch_and_add sunk
                 (int_of_float (Tuple.value t 0)));
          [])
  in
  let registry = function 1 -> window | _ -> sink in
  let stream = ref (disordered_stream ~keys n) in
  let emitted = ref 0 in
  let source () =
    match !stream with
    | [] -> None
    | t :: rest ->
        stream := rest;
        incr emitted;
        (* pace lightly so the resizes land mid-stream *)
        if !emitted mod 1000 = 0 then Unix.sleepf 0.002;
        Some t
  in
  let live =
    Executor.Live.start
      ~event_time:(Event_time.config (Watermark.Bounded 0.1))
      ~workers:4 ~source ~registry topo
  in
  Alcotest.(check bool) "window stage is elastic" true
    (Executor.Live.elastic live).(1);
  Alcotest.(check bool) "grow accepted" true
    (Executor.Live.resize live ~vertex:1 3);
  let deadline = Unix.gettimeofday () +. 20.0 in
  while
    Executor.Live.generation live < 1 && Unix.gettimeofday () < deadline
  do
    Unix.sleepf 0.001
  done;
  ignore (Executor.Live.resize live ~vertex:1 2);
  while
    (Executor.Live.produced live).(0) < n
    && Unix.gettimeofday () < deadline
  do
    Unix.sleepf 0.001
  done;
  let m = Executor.Live.stop live in
  Alcotest.(check bool) "finished" true
    (m.Executor.outcome = Supervision.Finished);
  Alcotest.(check bool) "reconfigured at least once" true
    (Executor.Live.generation live >= 1);
  Alcotest.(check int) "no on-time tuple declared late" 0
    (Array.fold_left ( + ) 0 m.Executor.late);
  Alcotest.(check int) "mass conserved through the resize" n
    (Atomic.get sunk)

(* ------------------------------------------------------------------ *)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  let prop t = QCheck_alcotest.to_alcotest t in
  Alcotest.run "ss_event"
    [
      ( "watermark",
        [
          quick "bounded generator" test_bounded_watermark;
          quick "min-advance throttle" test_bounded_min_advance_throttle;
          quick "periodic generator" test_periodic_watermark;
          quick "parse roundtrip" test_watermark_parse_roundtrip;
          quick "invalid arguments" test_watermark_invalid_args;
        ] );
      ( "event_window",
        [
          quick "fire order" test_event_window_fire_order;
          quick "fires again after firing"
            test_event_window_fires_again_after_firing;
          quick "refire retraction" test_event_window_refire_retraction;
          quick "refire horizon" test_event_window_refire_horizon;
          quick "export/import roundtrip" test_event_window_export_import;
          quick "class name resolution" test_event_window_of_name;
          quick "strict name parsing" test_event_window_of_name_strict;
          prop_event_window_name_roundtrip;
        ] );
      ( "model",
        [
          quick "firing selectivity" test_event_model_selectivity;
          quick "late fraction" test_event_model_late_fraction;
        ] );
      ( "lateness",
        [
          quick "parse kinds" test_lateness_parse;
          quick "dead-letter store" test_dead_letter_store;
        ] );
      ( "runtime",
        [
          quick "fission: zero on-time loss" test_fission_zero_on_time_loss;
          quick "live resize: zero on-time loss" test_live_resize_event_time;
        ] );
      ( "properties",
        [
          prop prop_fission_watermark_monotone;
          prop prop_window_firing_deterministic;
        ] );
    ]
