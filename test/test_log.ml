(* Tests for the durable partitioned log: framing and recovery, offset
   commits, the tuple codec, and the executor's log-backed ingest path —
   including the at-least-once crash-recovery contract. *)

open Ss_operators
open Ss_log

let tuple ?(key = 0) ?(tag = 0) values = Tuple.make ~key ~tag values

(* Fresh scratch directory per test; the suite runs inside dune's sandbox
   so nothing needs cleaning up. *)
let scratch =
  let n = ref 0 in
  fun () ->
    incr n;
    Printf.sprintf "logtest-%d-%d" (Unix.getpid ()) !n

let payload i = Bytes.of_string (Printf.sprintf "record-%06d" i)

let read_all log ~partition =
  let rec go from acc =
    match Log.read log ~partition ~from ~max_records:64 () with
    | [] -> List.rev acc
    | records ->
        let last = List.fold_left (fun _ (off, _) -> off) 0 records in
        go (last + 1) (List.rev_append records acc)
  in
  go 0 []

(* ------------------------------------------------------------------ *)
(* Append / read roundtrip *)

let test_roundtrip_across_segments () =
  (* A tiny segment size forces many rolls; offsets and payloads must
     survive them. *)
  let config =
    { Log.default_config with partitions = 1; segment_bytes = 256; index_interval = 4 }
  in
  let log = Log.create ~config (scratch ()) in
  let n = 200 in
  for i = 0 to n - 1 do
    let off = Log.append_to log ~partition:0 (payload i) in
    Alcotest.(check int) "dense offsets" i off
  done;
  Alcotest.(check int) "end offset" n (Log.end_offset log ~partition:0);
  let records = read_all log ~partition:0 in
  Alcotest.(check int) "all records read" n (List.length records);
  List.iteri
    (fun i (off, p) ->
      Alcotest.(check int) "offset order" i off;
      Alcotest.(check string) "payload" (Bytes.to_string (payload i))
        (Bytes.to_string p))
    records;
  (* Reads from the middle hit the sparse index, not a scan from 0. *)
  (match Log.read log ~partition:0 ~from:137 ~max_records:1 () with
  | [ (off, p) ] ->
      Alcotest.(check int) "mid read offset" 137 off;
      Alcotest.(check string) "mid read payload"
        (Bytes.to_string (payload 137))
        (Bytes.to_string p)
  | _ -> Alcotest.fail "expected exactly one record");
  Alcotest.(check (list (pair int string))) "read past end" []
    (List.map
       (fun (o, p) -> (o, Bytes.to_string p))
       (Log.read log ~partition:0 ~from:n ()));
  Log.close log

let test_reopen_preserves_records () =
  let dir = scratch () in
  let config = { Log.default_config with partitions = 2; segment_bytes = 512 } in
  let log = Log.create ~config dir in
  for i = 0 to 99 do
    ignore (Log.append log ~key:i (payload i) : int * int)
  done;
  let ends = [ Log.end_offset log ~partition:0; Log.end_offset log ~partition:1 ] in
  Log.close log;
  (* Reopen: partition count comes from the meta file, counts and contents
     are rebuilt from the segment frames. *)
  let log = Log.create dir in
  Alcotest.(check int) "partition count from meta" 2 (Log.partitions log);
  Alcotest.(check int) "no torn tails" 0 (Log.torn_tails_recovered log);
  Alcotest.(check (list int)) "ends preserved" ends
    [ Log.end_offset log ~partition:0; Log.end_offset log ~partition:1 ];
  Alcotest.(check int) "contents preserved" 100
    (List.length (read_all log ~partition:0) + List.length (read_all log ~partition:1));
  Log.close log

let test_append_batch_contiguous () =
  let config = { Log.default_config with partitions = 1; segment_bytes = 128 } in
  let log = Log.create ~config (scratch ()) in
  ignore (Log.append_to log ~partition:0 (payload 0) : int);
  let first = Log.append_batch log ~partition:0 (List.map payload [ 1; 2; 3; 4 ]) in
  Alcotest.(check int) "batch base offset" 1 first;
  Alcotest.(check int) "batch advances end" 5 (Log.end_offset log ~partition:0);
  List.iteri
    (fun i (off, p) ->
      Alcotest.(check int) "offset" i off;
      Alcotest.(check string) "payload" (Bytes.to_string (payload i))
        (Bytes.to_string p))
    (read_all log ~partition:0);
  Log.close log

let test_partition_routing () =
  let config = { Log.default_config with partitions = 4 } in
  let log = Log.create ~config (scratch ()) in
  Alcotest.(check int) "positive key" 2 (Log.partition_of_key log 6);
  Alcotest.(check int) "negative key folds" (Log.partition_of_key log 1)
    (Log.partition_of_key log (-7));
  Alcotest.(check bool) "in range" true
    (let p = Log.partition_of_key log (-1) in
     p >= 0 && p < 4);
  let part, off = Log.append log ~key:5 (payload 0) in
  Alcotest.(check int) "append routes by key" (Log.partition_of_key log 5) part;
  Alcotest.(check int) "first offset" 0 off;
  Log.close log

(* ------------------------------------------------------------------ *)
(* Crash recovery: torn tails and corruption *)

let last_segment dir =
  let segs =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".seg")
    |> List.sort compare
  in
  match List.rev segs with
  | last :: _ -> Filename.concat dir last
  | [] -> Alcotest.fail "no segment files"

let test_torn_tail_truncated () =
  let dir = scratch () in
  let config = { Log.default_config with partitions = 1 } in
  let log = Log.create ~config dir in
  for i = 0 to 49 do
    ignore (Log.append_to log ~partition:0 (payload i) : int)
  done;
  Log.close log;
  (* Chop bytes off the final record: the signature of a crash mid-append. *)
  let seg = last_segment (Filename.concat dir "p0") in
  let size = (Unix.stat seg).Unix.st_size in
  let fd = Unix.openfile seg [ Unix.O_WRONLY ] 0o644 in
  Unix.ftruncate fd (size - 5);
  Unix.close fd;
  let log = Log.create dir in
  Alcotest.(check int) "one torn tail recovered" 1 (Log.torn_tails_recovered log);
  Alcotest.(check int) "truncated to last valid record" 49
    (Log.end_offset log ~partition:0);
  Alcotest.(check int) "valid prefix intact" 49
    (List.length (read_all log ~partition:0));
  (* The log stays usable: the next append takes the truncated offset. *)
  Alcotest.(check int) "append after recovery" 49
    (Log.append_to log ~partition:0 (payload 49));
  Log.close log

let test_corrupt_tail_crc_truncated () =
  let dir = scratch () in
  let config = { Log.default_config with partitions = 1 } in
  let log = Log.create ~config dir in
  for i = 0 to 9 do
    ignore (Log.append_to log ~partition:0 (payload i) : int)
  done;
  Log.close log;
  (* Flip a byte inside the final record's payload: the CRC check must
     reject it and recovery truncates back to the previous boundary. *)
  let seg = last_segment (Filename.concat dir "p0") in
  let size = (Unix.stat seg).Unix.st_size in
  let fd = Unix.openfile seg [ Unix.O_RDWR ] 0o644 in
  ignore (Unix.lseek fd (size - 3) Unix.SEEK_SET : int);
  ignore (Unix.write fd (Bytes.of_string "X") 0 1 : int);
  Unix.close fd;
  let log = Log.create dir in
  Alcotest.(check int) "torn tail recovered" 1 (Log.torn_tails_recovered log);
  Alcotest.(check int) "corrupt record dropped" 9 (Log.end_offset log ~partition:0);
  Log.close log

let test_corruption_before_tail_raises () =
  let dir = scratch () in
  (* Small segments so the corruption lands in a non-final segment, where
     truncation would silently lose good data — that must raise instead. *)
  let config =
    { Log.default_config with partitions = 1; segment_bytes = 128 }
  in
  let log = Log.create ~config dir in
  for i = 0 to 49 do
    ignore (Log.append_to log ~partition:0 (payload i) : int)
  done;
  Log.close log;
  let segs =
    Sys.readdir (Filename.concat dir "p0")
    |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".seg")
    |> List.sort compare
  in
  Alcotest.(check bool) "several segments" true (List.length segs > 1);
  let first = Filename.concat (Filename.concat dir "p0") (List.hd segs) in
  let fd = Unix.openfile first [ Unix.O_RDWR ] 0o644 in
  ignore (Unix.lseek fd 10 Unix.SEEK_SET : int);
  ignore (Unix.write fd (Bytes.of_string "XXXX") 0 4 : int);
  Unix.close fd;
  (match Log.create dir with
  | exception Log.Corrupt _ -> ()
  | log ->
      Log.close log;
      Alcotest.fail "expected Corrupt on non-tail corruption");
  ()

(* ------------------------------------------------------------------ *)
(* Durability policies and consumer groups *)

let test_fsync_policies_smoke () =
  List.iteri
    (fun i fsync ->
      let config = { Log.default_config with partitions = 1; fsync } in
      let log = Log.create ~config (Printf.sprintf "%s-f%d" (scratch ()) i) in
      for j = 0 to 40 do
        ignore (Log.append_to log ~partition:0 (payload j) : int)
      done;
      Log.sync log;
      Alcotest.(check int) "all appended" 41 (Log.end_offset log ~partition:0);
      Log.close log)
    [ Log.Never; Log.Every 1; Log.Every 8; Log.Interval 0.001 ]

let test_commit_roundtrip () =
  let dir = scratch () in
  let config = { Log.default_config with partitions = 2 } in
  let log = Log.create ~config dir in
  Alcotest.(check int) "fresh group at 0" 0
    (Log.committed log ~group:"g" ~partition:0);
  Log.commit log ~group:"g" ~partition:0 17;
  Log.commit log ~group:"g" ~partition:1 4;
  Log.commit log ~group:"h" ~partition:0 1;
  Alcotest.(check int) "commit read back" 17
    (Log.committed log ~group:"g" ~partition:0);
  Log.commit log ~group:"g" ~partition:0 23;
  Alcotest.(check int) "overwrite" 23 (Log.committed log ~group:"g" ~partition:0);
  Log.close log;
  (* Offsets are durable: a reopened log sees them. *)
  let log = Log.create dir in
  Alcotest.(check int) "durable across reopen" 23
    (Log.committed log ~group:"g" ~partition:0);
  Alcotest.(check int) "other partition" 4
    (Log.committed log ~group:"g" ~partition:1);
  Alcotest.(check (list string)) "groups listed" [ "g"; "h" ] (Log.groups log);
  Log.close log

(* ------------------------------------------------------------------ *)
(* Tuple codec *)

let test_codec_roundtrip () =
  let t = Tuple.make ~key:42 ~tag:(-7) [| 1.5; -0.25; 1e300 |] in
  let t' = Tuple_codec.decode (Tuple_codec.encode t) in
  Alcotest.(check int) "key" t.Tuple.key t'.Tuple.key;
  Alcotest.(check int) "tag" t.Tuple.tag t'.Tuple.tag;
  Alcotest.(check bool) "values bit-exact" true (t.Tuple.values = t'.Tuple.values);
  Alcotest.(check int) "size matches" (Bytes.length (Tuple_codec.encode t))
    (Tuple_codec.encoded_size t);
  let empty = Tuple.make ~key:0 ~tag:0 [||] in
  Alcotest.(check int) "empty arity roundtrip" 0
    (Array.length (Tuple_codec.decode (Tuple_codec.encode empty)).Tuple.values)

let test_codec_rejects_malformed () =
  let raises b =
    match Tuple_codec.decode b with
    | exception Tuple_codec.Malformed _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "short payload" true (raises (Bytes.create 10));
  let b = Tuple_codec.encode (tuple [| 1.0; 2.0 |]) in
  Alcotest.(check bool) "truncated values" true
    (raises (Bytes.sub b 0 (Bytes.length b - 3)))

let test_codec_roundtrip_qcheck =
  let gen =
    QCheck.Gen.(
      map3
        (fun key tag vals -> Tuple.make ~key ~tag (Array.of_list vals))
        (int_range (-1_000_000) 1_000_000)
        (int_range (-1_000_000) 1_000_000)
        (list_size (int_bound 8) (map float_of_int (int_range (-10_000) 10_000))))
  in
  QCheck.Test.make ~count:300 ~name:"tuple codec roundtrips"
    (QCheck.make gen) (fun t ->
      let t' = Tuple_codec.decode (Tuple_codec.encode t) in
      t'.Tuple.key = t.Tuple.key
      && t'.Tuple.tag = t.Tuple.tag
      && t'.Tuple.values = t.Tuple.values)

(* ------------------------------------------------------------------ *)
(* Log-backed ingest: the executor end of the contract *)

open Ss_topology
open Ss_runtime

let op name ms = Operator.make ~service_time:(ms /. 1e3) name

let registry_of table v =
  match List.assoc_opt v table with
  | Some b -> b
  | None -> Alcotest.failf "no behavior registered for vertex %d" v

(* A thread-safe recorder: every instance appends the tags it sees to the
   shared list. *)
let recorder name =
  let m = Mutex.create () in
  let seen = ref [] in
  let behavior =
    Behavior.make ~name (fun () t ->
        Mutex.lock m;
        seen := t.Tuple.tag :: !seen;
        Mutex.unlock m;
        [ t ])
  in
  (behavior, fun () -> !seen)

let dead_source () = None

(* Write [n] tuples (tag i = identity) into a fresh log; returns the log
   directory and the tag of each (partition, offset). *)
let seed_log ~dir ~partitions n =
  let config = { Log.default_config with partitions } in
  let log = Log.create ~config dir in
  let where = Hashtbl.create n in
  for i = 0 to n - 1 do
    let t = Tuple.make ~key:i ~tag:i [| float_of_int i |] in
    let part, off = Log.append log ~key:i (Tuple_codec.encode t) in
    Hashtbl.replace where (part, off) i
  done;
  Log.close log;
  where

let test_ingest_delivers_everything () =
  let dir = scratch () in
  let n = 500 in
  let where = seed_log ~dir ~partitions:3 n in
  let t =
    Topology.create_exn
      [| op "src" 0.01; op "sink" 0.01 |]
      [ (0, 1, 1.0) ]
  in
  let sink, seen = recorder "sink" in
  let log = Log.create dir in
  let m =
    Executor.run
      ~ingest:(Executor.ingest ~commit_every:64 log)
      ~source:dead_source ~registry:(registry_of [ (1, sink) ]) t
  in
  Alcotest.(check bool) "finished" true
    (m.Executor.outcome = Supervision.Finished);
  Alcotest.(check int) "source produced all" n m.Executor.produced.(0);
  Alcotest.(check int) "sink consumed all" n m.Executor.consumed.(1);
  let tags = List.sort_uniq compare (seen ()) in
  Alcotest.(check int) "every tuple delivered" n (List.length tags);
  (* A clean run commits every partition to its end. *)
  for p = 0 to Log.partitions log - 1 do
    Alcotest.(check int)
      (Printf.sprintf "partition %d fully committed" p)
      (Log.end_offset log ~partition:p)
      (Log.committed log ~group:"default" ~partition:p)
  done;
  ignore where;
  Log.close log

let test_ingest_separate_groups () =
  (* Two consumer groups replay independently: a second group starts from
     0 even after the first drained everything. *)
  let dir = scratch () in
  let n = 120 in
  ignore (seed_log ~dir ~partitions:2 n : (int * int, int) Hashtbl.t);
  let t =
    Topology.create_exn [| op "src" 0.01; op "sink" 0.01 |] [ (0, 1, 1.0) ]
  in
  let run group =
    let sink, seen = recorder "sink" in
    let log = Log.create dir in
    let m =
      Executor.run
        ~ingest:(Executor.ingest ~group log)
        ~source:dead_source ~registry:(registry_of [ (1, sink) ]) t
    in
    Log.close log;
    Alcotest.(check bool) "finished" true
      (m.Executor.outcome = Supervision.Finished);
    List.length (List.sort_uniq compare (seen ()))
  in
  Alcotest.(check int) "first group sees all" n (run "alpha");
  Alcotest.(check int) "second group replays all" n (run "beta");
  Alcotest.(check int) "first group again sees none" 0 (run "alpha")

let test_crash_recovery_at_least_once () =
  (* The headline e2e: kill a log-backed run mid-stream (watchdog timeout —
     in-flight tuples are dropped exactly as a crash would drop them),
     restart from the committed offsets, and require:
     - zero loss: run 1 fully processed everything below each partition's
       committed watermark, and run 1 + run 2 together cover every record;
     - bounded redelivery: run 2 receives exactly the uncommitted suffix;
     - exact counts after dedup: distinct tags at the sink = the stream. *)
  let dir = scratch () in
  let n = 600 in
  let partitions = 2 in
  let where = seed_log ~dir ~partitions n in
  let topo =
    Topology.create_exn
      [| op "src" 0.01; op "work" 0.01; op "sink" 0.01 |]
      [ (0, 1, 1.0); (1, 2, 1.0) ]
  in
  let slow_identity =
    Behavior.make ~name:"slow_identity" (fun () t ->
        (* ~1.5 ms per tuple: 600 tuples need ~0.9 s, so a 0.2 s timeout
           reliably lands mid-stream. *)
        Unix.sleepf 0.0015;
        [ t ])
  in
  (* --- run 1: killed mid-stream ---------------------------------- *)
  let sink1, seen1 = recorder "sink" in
  let log = Log.create dir in
  let m1 =
    Executor.run
      ~ingest:(Executor.ingest ~commit_every:16 log)
      ~timeout:0.2 ~source:dead_source
      ~registry:(registry_of [ (1, slow_identity); (2, sink1) ])
      topo
  in
  let committed_after_crash =
    List.init partitions (fun p ->
        Log.committed log ~group:"default" ~partition:p)
  in
  let ends =
    List.init partitions (fun p -> Log.end_offset log ~partition:p)
  in
  Log.close log;
  (match m1.Executor.outcome with
  | Supervision.Timed_out _ -> ()
  | o ->
      Alcotest.failf "run 1 should have timed out, got %s"
        (match o with
        | Supervision.Finished -> "Finished"
        | Supervision.Actor_failed _ -> "Actor_failed"
        | Supervision.Timed_out _ -> "Timed_out"));
  let delivered1 = List.sort_uniq compare (seen1 ()) in
  Alcotest.(check bool) "run 1 was partial" true
    (List.length delivered1 < n);
  (* Zero loss below the watermark: every committed record reached the
     sink before the crash. *)
  List.iteri
    (fun p committed ->
      for off = 0 to committed - 1 do
        let tag = Hashtbl.find where (p, off) in
        if not (List.mem tag delivered1) then
          Alcotest.failf
            "p%d offset %d (tag %d) was committed but never reached the sink"
            p off tag
      done)
    committed_after_crash;
  (* --- run 2: restart, no timeout -------------------------------- *)
  let sink2, seen2 = recorder "sink" in
  let log = Log.create dir in
  let m2 =
    Executor.run
      ~ingest:(Executor.ingest ~commit_every:16 log)
      ~source:dead_source
      ~registry:(registry_of [ (1, slow_identity); (2, sink2) ])
      topo
  in
  Alcotest.(check bool) "run 2 finished" true
    (m2.Executor.outcome = Supervision.Finished);
  (* Bounded redelivery: run 2 consumed exactly the uncommitted suffix. *)
  let suffix =
    List.fold_left2 (fun acc c e -> acc + (e - c)) 0 committed_after_crash ends
  in
  Alcotest.(check int) "run 2 redelivered exactly the uncommitted suffix"
    suffix m2.Executor.produced.(0);
  let expected_suffix_tags =
    List.concat
      (List.mapi
         (fun p committed ->
           List.init
             (List.nth ends p - committed)
             (fun i -> Hashtbl.find where (p, committed + i)))
         committed_after_crash)
    |> List.sort compare
  in
  Alcotest.(check (list int)) "run 2 delivered the suffix records"
    expected_suffix_tags
    (List.sort compare (seen2 ()));
  (* At-least-once, exact after dedup: the union covers the stream. *)
  let union =
    List.sort_uniq compare (List.rev_append (seen1 ()) (seen2 ()))
  in
  Alcotest.(check int) "union covers every input exactly" n (List.length union);
  (* Everything is now committed. *)
  for p = 0 to partitions - 1 do
    Alcotest.(check int) "fully committed after recovery"
      (Log.end_offset log ~partition:p)
      (Log.committed log ~group:"default" ~partition:p)
  done;
  Log.close log

let test_ingest_through_fission () =
  (* The tracked path must survive fission units (emitter / workers /
     collector) without losing or forging completions. *)
  let dir = scratch () in
  let n = 400 in
  ignore (seed_log ~dir ~partitions:2 n : (int * int, int) Hashtbl.t);
  let t =
    Topology.create_exn
      [|
        op "src" 0.01;
        Operator.make ~service_time:1e-4 ~replicas:3 "fan";
        op "sink" 0.01;
      |]
      [ (0, 1, 1.0); (1, 2, 1.0) ]
  in
  let sink, seen = recorder "sink" in
  let log = Log.create dir in
  let m =
    Executor.run
      ~ingest:(Executor.ingest ~commit_every:32 log)
      ~source:dead_source
      ~registry:(registry_of [ (1, Stateless_ops.identity); (2, sink) ])
      t
  in
  Alcotest.(check bool) "finished" true
    (m.Executor.outcome = Supervision.Finished);
  Alcotest.(check int) "sink saw everything" n
    (List.length (List.sort_uniq compare (seen ())));
  for p = 0 to 1 do
    Alcotest.(check int) "fully committed" (Log.end_offset log ~partition:p)
      (Log.committed log ~group:"default" ~partition:p)
  done;
  Log.close log

(* ------------------------------------------------------------------ *)

let qsuite = List.map QCheck_alcotest.to_alcotest [ test_codec_roundtrip_qcheck ]

let () =
  Alcotest.run "ss_log"
    [
      ( "log",
        [
          Alcotest.test_case "roundtrip across segments" `Quick
            test_roundtrip_across_segments;
          Alcotest.test_case "reopen preserves records" `Quick
            test_reopen_preserves_records;
          Alcotest.test_case "append_batch contiguous" `Quick
            test_append_batch_contiguous;
          Alcotest.test_case "partition routing" `Quick test_partition_routing;
          Alcotest.test_case "torn tail truncated" `Quick
            test_torn_tail_truncated;
          Alcotest.test_case "corrupt tail CRC truncated" `Quick
            test_corrupt_tail_crc_truncated;
          Alcotest.test_case "corruption before tail raises" `Quick
            test_corruption_before_tail_raises;
          Alcotest.test_case "fsync policies" `Quick test_fsync_policies_smoke;
          Alcotest.test_case "commit roundtrip" `Quick test_commit_roundtrip;
        ] );
      ( "codec",
        Alcotest.test_case "roundtrip" `Quick test_codec_roundtrip
        :: Alcotest.test_case "rejects malformed" `Quick
             test_codec_rejects_malformed
        :: qsuite );
      ( "ingest",
        [
          Alcotest.test_case "delivers everything" `Quick
            test_ingest_delivers_everything;
          Alcotest.test_case "independent consumer groups" `Quick
            test_ingest_separate_groups;
          Alcotest.test_case "crash recovery is at-least-once" `Slow
            test_crash_recovery_at_least_once;
          Alcotest.test_case "tracked tuples survive fission" `Quick
            test_ingest_through_fission;
        ] );
    ]
