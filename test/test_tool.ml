(* Tests for the Session facade: the import -> analyze -> optimize -> fuse
   -> export workflow of the SpinStreams tool. *)

open Ss_topology
open Ss_tool

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let fig11_xml =
  {|<topology>
      <operator id="0" name="op1" service_time="det:0.001"/>
      <operator id="1" name="op2" service_time="det:0.0012"/>
      <operator id="2" name="op3" service_time="det:0.0007"/>
      <operator id="3" name="op4" service_time="det:0.002"/>
      <operator id="4" name="op5" service_time="det:0.0015"/>
      <operator id="5" name="op6" service_time="det:0.0002"/>
      <edge from="0" to="1" probability="0.7"/>
      <edge from="0" to="2" probability="0.3"/>
      <edge from="2" to="3" probability="0.5"/>
      <edge from="2" to="4" probability="0.5"/>
      <edge from="4" to="3" probability="0.35"/>
      <edge from="4" to="5" probability="0.65"/>
      <edge from="3" to="5" probability="1.0"/>
      <edge from="1" to="5" probability="1.0"/>
    </topology>|}

let test_import_and_versions () =
  let s = Session.import (Fixtures.table1 ()) in
  Alcotest.(check (list string)) "original only" [ "original" ] (Session.versions s);
  Alcotest.(check int) "topology accessible" 6
    (Topology.size (Session.topology s ()))

let test_import_xml () =
  match Session.import_xml fig11_xml with
  | Error e -> Alcotest.fail e
  | Ok s ->
      let a = Session.analyze s () in
      Alcotest.(check (float 1e-6)) "fig11 throughput" 1000.0
        a.Ss_core.Steady_state.throughput

let test_import_xml_error () =
  match Session.import_xml "<nope/>" with
  | Ok _ -> Alcotest.fail "expected error"
  | Error e -> Alcotest.(check bool) "describes problem" true (String.length e > 0)

let test_optimize_registers_version () =
  let s = Session.import (Fixtures.pipeline [ 0.5; 2.0; 0.4 ]) in
  let version, plan = Session.eliminate_bottlenecks s () in
  Alcotest.(check bool) "version name" true (contains ~needle:"fission" version);
  Alcotest.(check (list string)) "two versions" [ "original"; version ]
    (Session.versions s);
  Alcotest.(check (float 1e-6)) "optimized throughput" 2000.0
    plan.Ss_core.Fission.analysis.Ss_core.Steady_state.throughput;
  (* The default version is now the optimized one. *)
  let latest = Session.topology s () in
  Alcotest.(check int) "replicas in latest" 4
    (Topology.operator latest 1).Operator.replicas;
  (* The original is still addressable. *)
  let original = Session.topology s ~version:"original" () in
  Alcotest.(check int) "original untouched" 1
    (Topology.operator original 1).Operator.replicas

let test_bounded_optimize_version_name () =
  let s = Session.import (Fixtures.pipeline [ 0.5; 2.0; 0.4 ]) in
  let version, _ = Session.eliminate_bottlenecks s ~max_replicas:4 () in
  Alcotest.(check bool) "bound recorded in name" true
    (contains ~needle:"bound4" version)

let test_fuse_workflow () =
  let s = Session.import (Fixtures.table1 ()) in
  let candidates = Session.fusion_candidates s () in
  Alcotest.(check bool) "candidates proposed" true (List.length candidates > 0);
  match Session.fuse s [ 2; 3; 4 ] with
  | Error e -> Alcotest.fail e
  | Ok (version, outcome) ->
      Alcotest.(check bool) "version name" true (contains ~needle:"fusion" version);
      Alcotest.(check (float 1e-9)) "fused service time" 2.8e-3
        outcome.Ss_core.Fusion.fused_service_time;
      Alcotest.(check int) "fused topology registered" 4
        (Topology.size (Session.topology s ~version ()))

let test_fuse_illegal_subgraph () =
  let s = Session.import (Fixtures.table1 ()) in
  match Session.fuse s [ 3; 4 ] with
  | Ok _ -> Alcotest.fail "expected front-end error"
  | Error _ ->
      Alcotest.(check int) "no version registered" 1
        (List.length (Session.versions s))

let test_unknown_version_raises () =
  let s = Session.import (Fixtures.table1 ()) in
  Alcotest.check_raises "unknown version" Not_found (fun () ->
      ignore (Session.topology s ~version:"nope" ()))

let test_simulate () =
  let s = Session.import (Fixtures.pipeline [ 1.0; 4.0 ]) in
  let config =
    { Ss_sim.Engine.default_config with Ss_sim.Engine.warmup = 1.0; measure = 5.0 }
  in
  let r = Session.simulate s ~config () in
  Alcotest.(check bool) "close to 250 t/s" true
    (Float.abs (r.Ss_sim.Engine.throughput -. 250.0) < 10.0)

let test_export_roundtrip () =
  let s = Session.import (Fixtures.table1 ()) in
  let xml = Session.export_xml s () in
  match Session.import_xml xml with
  | Error e -> Alcotest.fail e
  | Ok s' ->
      Alcotest.(check (float 1e-6)) "same analysis" 1000.0
        (Session.analyze s' ()).Ss_core.Steady_state.throughput

let test_generate_code () =
  let s = Session.import (Fixtures.table1 ()) in
  let code = Session.generate_code s ~fused:[ [ 2; 3; 4 ] ] ~tuples:500 () in
  Alcotest.(check bool) "mentions executor" true
    (contains ~needle:"Ss_runtime.Executor.run" code);
  Alcotest.(check bool) "fused group" true (contains ~needle:"[ 2; 3; 4 ]" code)

let test_report_content () =
  let s = Session.import (Fixtures.pipeline [ 1.0; 4.0; 0.5 ]) in
  let report = Session.report s () in
  Alcotest.(check bool) "shows throughput" true
    (contains ~needle:"throughput" report);
  Alcotest.(check bool) "names the saturated operator" true
    (contains ~needle:"stage1" report);
  (* After optimization the report compares against the original. *)
  let _ = Session.eliminate_bottlenecks s () in
  let report' = Session.report s () in
  Alcotest.(check bool) "improvement percentage" true
    (contains ~needle:"vs original" report')

let test_report_no_spurious_comparison () =
  (* The most recent version IS the original: identical throughputs must
     not print a "+0.0%" comparison line (relative-tolerance check, not
     exact float inequality). *)
  let s = Session.import (Fixtures.pipeline [ 1.0; 4.0; 0.5 ]) in
  let report = Session.report s () in
  Alcotest.(check bool) "no comparison against itself" false
    (contains ~needle:"vs original" report);
  let report' = Session.report s ~version:"original" () in
  Alcotest.(check bool) "no comparison for explicit original" false
    (contains ~needle:"vs original" report')

let test_execute_runtime_report () =
  (* Drive a version on the supervised actor runtime and render the
     per-actor report. *)
  let s = Session.import (Fixtures.pipeline [ 0.01; 0.01; 0.01 ]) in
  let m = Session.execute s ~tuples:300 ~timeout:60.0 () in
  Alcotest.(check bool) "run finished" true
    (m.Ss_runtime.Executor.outcome = Ss_runtime.Supervision.Finished);
  Alcotest.(check int) "stream drained" 300 m.Ss_runtime.Executor.consumed.(2);
  let report = Session.runtime_report s m in
  Alcotest.(check bool) "outcome line" true
    (contains ~needle:"outcome: finished" report);
  Alcotest.(check bool) "per-actor section" true
    (contains ~needle:"actors:" report);
  Alcotest.(check bool) "statuses rendered" true
    (contains ~needle:"completed" report)

let test_measured_feedback_roundtrip () =
  (* The observability loop closed: execute Fig. 11 with telemetry on the
     real runtime, fold the measured profiles back into a "measured-N"
     version, and re-run Algorithm 1 on it. Busy-wait stubs reproduce the
     declared ms-scale service times within a few percent, so the
     re-prediction from live data must agree with the original prediction
     (the paper's premise that profiled and live models coincide at the
     steady state). *)
  let s = Session.import (Fixtures.table1 ()) in
  let predicted = (Session.analyze s ()).Ss_core.Steady_state.throughput in
  let instrument =
    {
      Ss_runtime.Executor.default_instrument with
      telemetry = true;
      telemetry_sample = 1;
    }
  in
  let m = Session.execute s ~tuples:150 ~timeout:120.0 ~instrument () in
  Alcotest.(check bool) "run finished" true
    (m.Ss_runtime.Executor.outcome = Ss_runtime.Supervision.Finished);
  match Session.measured_version s m with
  | Error e -> Alcotest.fail e
  | Ok version ->
      Alcotest.(check bool) "registered as a version" true
        (List.mem version (Session.versions s));
      Alcotest.(check bool) "named measured-N" true
        (contains ~needle:"measured" version);
      let re_predicted =
        (Session.analyze s ~version ()).Ss_core.Steady_state.throughput
      in
      let err = abs_float (re_predicted -. predicted) /. predicted in
      Alcotest.(check bool)
        (Printf.sprintf "re-predicted %.1f t/s within 10%% of %.1f t/s"
           re_predicted predicted)
        true (err < 0.10);
      (* the twin carries measured (non-degenerate) service times *)
      let twin = Session.topology s ~version () in
      Alcotest.(check bool) "measured service time positive" true
        ((Topology.operator twin 1).Operator.service_time > 0.0)

let test_measured_version_requires_telemetry () =
  let s = Session.import (Fixtures.pipeline [ 0.01; 0.01 ]) in
  let m = Session.execute s ~tuples:50 ~timeout:60.0 () in
  match Session.measured_version s m with
  | Ok v -> Alcotest.fail ("unexpected measured version " ^ v)
  | Error e ->
      Alcotest.(check bool) "error mentions telemetry" true
        (contains ~needle:"telemetry" e)

(* ------------------------------------------------------------------ *)
(* Export *)

let lines s = String.split_on_char '\n' s |> List.filter (fun l -> l <> "")

let test_csv_steady_state () =
  let t = Fixtures.table1 () in
  let a = Ss_core.Steady_state.analyze t in
  let csv = Export.steady_state_csv t a in
  let rows = lines csv in
  Alcotest.(check int) "header + 6 rows" 7 (List.length rows);
  Alcotest.(check bool) "header columns" true
    (contains ~needle:"vertex,operator,kind" (List.hd rows));
  (* The source row carries its measured throughput. *)
  Alcotest.(check bool) "op1 at 1000/s" true
    (contains ~needle:"op1" csv && contains ~needle:"1000.000" csv)

let test_csv_comparison () =
  let t = Fixtures.pipeline [ 1.0; 0.5 ] in
  let a = Ss_core.Steady_state.analyze t in
  let config =
    { Ss_sim.Engine.default_config with Ss_sim.Engine.warmup = 1.0; measure = 4.0 }
  in
  let r = Ss_sim.Engine.run ~config t in
  let csv = Export.comparison_csv t a r in
  Alcotest.(check int) "header + 2 rows" 3 (List.length (lines csv));
  Alcotest.(check bool) "has error column" true
    (contains ~needle:"relative_error" csv)

let test_csv_latency () =
  let t = Fixtures.pipeline [ 1.0; 4.0; 0.5 ] in
  let a = Ss_core.Steady_state.analyze t in
  let l = Ss_core.Latency.estimate t a in
  let csv = Export.latency_csv t l in
  Alcotest.(check bool) "saturated rendered" true
    (contains ~needle:"saturated" csv);
  Alcotest.(check int) "header + 3 rows" 4 (List.length (lines csv))

let test_csv_escaping () =
  let ops =
    [|
      Operator.make ~service_time:1e-3 "plain";
      Operator.make ~service_time:1e-3 "with,comma\"and quote";
    |]
  in
  let t = Topology.create_exn ops [ (0, 1, 1.0) ] in
  let csv = Export.steady_state_csv t (Ss_core.Steady_state.analyze t) in
  Alcotest.(check bool) "field quoted and quotes doubled" true
    (contains ~needle:"\"with,comma\"\"and quote\"" csv)

let test_json_encoder () =
  let open Export.Json in
  Alcotest.(check string) "escaping" {|{"a\"b": "x\ny"}|}
    (to_string (Obj [ ("a\"b", Str "x\ny") ]));
  Alcotest.(check string) "numbers" "[1,2.5,null]"
    (to_string (Arr [ Num 1.0; Num 2.5; Num infinity ]));
  Alcotest.(check string) "empty containers" {|{"a": [],"b": {}}|}
    (to_string (Obj [ ("a", Arr []); ("b", Obj []) ]));
  Alcotest.(check string) "booleans and null" "[true,false,null]"
    (to_string (Arr [ Bool true; Bool false; Null ]))

let test_session_json () =
  let s = Session.import (Fixtures.pipeline [ 0.5; 2.0; 0.4 ]) in
  let _ = Session.eliminate_bottlenecks s () in
  let json = Export.session_json s in
  Alcotest.(check bool) "both versions listed" true
    (contains ~needle:"\"original\"" json
    && contains ~needle:"fission-1" json);
  Alcotest.(check bool) "throughput fields" true
    (contains ~needle:"\"throughput\"" json);
  Alcotest.(check bool) "bottleneck names" true
    (contains ~needle:"\"bottlenecks\"" json)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "ss_tool"
    [
      ( "session",
        [
          quick "import and versions" test_import_and_versions;
          quick "import xml" test_import_xml;
          quick "import xml errors" test_import_xml_error;
          quick "optimize registers a version" test_optimize_registers_version;
          quick "bounded optimize naming" test_bounded_optimize_version_name;
          quick "fuse workflow" test_fuse_workflow;
          quick "illegal fusion leaves session intact" test_fuse_illegal_subgraph;
          quick "unknown version" test_unknown_version_raises;
          quick "simulate" test_simulate;
          quick "export roundtrip" test_export_roundtrip;
          quick "generate code" test_generate_code;
          quick "report content" test_report_content;
          quick "report skips self-comparison" test_report_no_spurious_comparison;
          quick "execute + runtime report" test_execute_runtime_report;
          quick "measured-profile feedback roundtrip"
            test_measured_feedback_roundtrip;
          quick "measured version requires telemetry"
            test_measured_version_requires_telemetry;
        ] );
      ( "export",
        [
          quick "steady-state csv" test_csv_steady_state;
          quick "comparison csv" test_csv_comparison;
          quick "latency csv" test_csv_latency;
          quick "csv escaping" test_csv_escaping;
          quick "json encoder" test_json_encoder;
          quick "session json" test_session_json;
        ] );
    ]
