(* Tests for the workload substrate: the Algorithm 5 random-topology
   generator, the stream generator and the profiler. *)

open Ss_prelude
open Ss_topology
open Ss_workload

(* ------------------------------------------------------------------ *)
(* Random topology generation (Algorithm 5) *)

let test_generate_valid_batch () =
  (* Topology.create validates; generate uses create_exn, so reaching this
     point means every invariant (rooted, acyclic, reachable, stochastic)
     held. Check the advertised size bounds on a batch. *)
  let rng = Rng.create 123 in
  for _ = 1 to 100 do
    let t = Random_topology.generate rng in
    let v = Topology.size t in
    Alcotest.(check bool) "vertex bounds" true (v >= 2 && v <= 20);
    Alcotest.(check int) "source is vertex 0" 0 (Topology.source t);
    Alcotest.(check string) "source name" "source"
      (Topology.operator t 0).Operator.name
  done

let test_edge_budget () =
  let rng = Rng.create 7 in
  for _ = 1 to 50 do
    let t = Random_topology.generate rng in
    let v = Topology.size t in
    let e = Topology.num_edges t in
    (* At least a spanning structure; at most the forward-edge capacity.
       Algorithm 5 may add a few extra source edges beyond (V-1) * beta. *)
    Alcotest.(check bool) "enough edges" true (e >= v - 1);
    Alcotest.(check bool) "sparse" true (e <= v * (v - 1) / 2)
  done

let test_explicit_sizes () =
  let rng = Rng.create 99 in
  let t = Random_topology.generate_with_sizes rng ~vertices:10 ~edges:12 in
  Alcotest.(check int) "vertices" 10 (Topology.size t);
  Alcotest.(check bool) "at least 12 edges (source completion may add)" true
    (Topology.num_edges t >= 12)

let test_size_errors () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "too many edges"
    (Invalid_argument "Random_topology: too many edges") (fun () ->
      ignore (Random_topology.generate_with_sizes rng ~vertices:4 ~edges:7));
  Alcotest.check_raises "too few edges"
    (Invalid_argument "Random_topology: too few edges") (fun () ->
      ignore (Random_topology.generate_with_sizes rng ~vertices:4 ~edges:2))

let test_binary_operators_have_two_inputs () =
  let rng = Rng.create 11 in
  for _ = 1 to 100 do
    let t = Random_topology.generate rng in
    Array.iteri
      (fun v op ->
        if Random_topology.behavior_name op = "bandjoin" then
          Alcotest.(check bool) "join has >= 2 inputs" true
            (Topology.in_degree t v >= 2))
      (Topology.operators t)
  done

let test_source_headroom () =
  let rng = Rng.create 5 in
  for _ = 1 to 30 do
    let t = Random_topology.generate rng in
    let src_rate = Operator.service_rate (Topology.operator t 0) in
    let fastest =
      Array.fold_left
        (fun acc op -> Float.max acc (Operator.service_rate op))
        0.0
        (Array.sub (Topology.operators t) 1 (Topology.size t - 1))
    in
    Alcotest.(check (float 1e-6)) "source 33% above the fastest operator"
      (1.33 *. fastest) src_rate
  done

let test_testbed_deterministic () =
  let names t =
    Array.to_list (Topology.operators t) |> List.map (fun o -> o.Operator.name)
  in
  let a = Random_topology.testbed ~seed:42 5 in
  let b = Random_topology.testbed ~seed:42 5 in
  Alcotest.(check int) "count" 5 (List.length a);
  List.iter2
    (fun x y ->
      Alcotest.(check (list string)) "same operators" (names x) (names y);
      Alcotest.(check int) "same edges" (Topology.num_edges x) (Topology.num_edges y))
    a b;
  let c = Random_topology.testbed ~seed:43 5 in
  Alcotest.(check bool) "different seed differs" true
    (List.exists2 (fun x y -> names x <> names y) a c)

let test_behavior_name_strips_suffix () =
  let op = Operator.make ~service_time:1e-3 "quantile_w5000_s10#7" in
  Alcotest.(check string) "stripped" "quantile_w5000_s10"
    (Random_topology.behavior_name op);
  let op = Operator.make ~service_time:1e-3 "source" in
  Alcotest.(check string) "no suffix" "source" (Random_topology.behavior_name op)

let test_windowed_ops_have_selectivity () =
  let rng = Rng.create 17 in
  let found = ref false in
  for _ = 1 to 60 do
    let t = Random_topology.generate rng in
    Array.iter
      (fun op ->
        let base = Random_topology.behavior_name op in
        let windowed =
          List.exists
            (fun p ->
              String.length base >= String.length p
              && String.sub base 0 (String.length p) = p)
            [ "sum_"; "max_"; "min_"; "wma_"; "quantile_"; "mean_bykey"; "skyline"; "topk" ]
        in
        if windowed then begin
          found := true;
          Alcotest.(check bool) "slide in {1,10,50}" true
            (List.mem op.Operator.input_selectivity [ 1.0; 10.0; 50.0 ])
        end)
      (Topology.operators t)
  done;
  Alcotest.(check bool) "windowed operators were generated" true !found

let test_partitioned_ops_have_zipf_keys () =
  let rng = Rng.create 29 in
  let found = ref false in
  for _ = 1 to 60 do
    let t = Random_topology.generate rng in
    Array.iter
      (fun op ->
        match op.Operator.kind with
        | Operator.Partitioned_stateful keys ->
            found := true;
            Alcotest.(check bool) "key group count in range" true
              (Discrete.support keys >= 256 && Discrete.support keys <= 4096);
            (* Zipf with alpha > 0 implies visible skew. *)
            Alcotest.(check bool) "skewed" true
              (Discrete.max_prob keys > 1.0 /. float_of_int (Discrete.support keys))
        | Operator.Stateless | Operator.Stateful -> ())
      (Topology.operators t)
  done;
  Alcotest.(check bool) "partitioned operators were generated" true !found

let test_service_time_spread () =
  (* Paper: fastest in hundreds of microseconds, slowest up to hundreds of
     milliseconds. *)
  let rng = Rng.create 31 in
  let all_times = ref [] in
  for _ = 1 to 50 do
    let t = Random_topology.generate rng in
    Array.iteri
      (fun v op ->
        if v <> 0 then all_times := op.Operator.service_time :: !all_times)
      (Topology.operators t)
  done;
  let times = Array.of_list !all_times in
  Alcotest.(check bool) "nothing above 300ms" true (Stats.maximum times <= 0.3);
  Alcotest.(check bool) "nothing below 50us" true (Stats.minimum times >= 5e-5);
  Alcotest.(check bool) "spread spans 2+ orders of magnitude" true
    (Stats.maximum times /. Stats.minimum times > 100.0)

(* ------------------------------------------------------------------ *)
(* Stream generation *)

let test_stream_timestamps_and_count () =
  let rng = Rng.create 3 in
  let ts = Stream_gen.tuples rng 100 in
  Alcotest.(check int) "count" 100 (List.length ts);
  let rec increasing = function
    | a :: (b :: _ as rest) ->
        a.Ss_operators.Tuple.ts < b.Ss_operators.Tuple.ts && increasing rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "timestamps increase" true (increasing ts)

let test_stream_key_frequencies () =
  let spec =
    { Stream_gen.default_spec with
      Stream_gen.keys = Discrete.of_weights [| 3.0; 1.0 |] }
  in
  let rng = Rng.create 13 in
  let ts = Stream_gen.tuples ~spec rng 20_000 in
  let zeros =
    List.length (List.filter (fun t -> t.Ss_operators.Tuple.key = 0) ts)
  in
  let freq = float_of_int zeros /. 20_000.0 in
  Alcotest.(check bool)
    (Printf.sprintf "key 0 frequency %.3f near 0.75" freq)
    true
    (Float.abs (freq -. 0.75) < 0.02)

let test_stream_tags () =
  let spec = { Stream_gen.default_spec with Stream_gen.tags = 2 } in
  let rng = Rng.create 13 in
  let ts = Stream_gen.tuples ~spec rng 1000 in
  let tags = List.sort_uniq compare (List.map (fun t -> t.Ss_operators.Tuple.tag) ts) in
  Alcotest.(check (list int)) "both tags appear" [ 0; 1 ] tags

let test_sequence_matches_tuples () =
  let a = Stream_gen.tuples (Rng.create 9) 50 in
  let b =
    Stream_gen.sequence (Rng.create 9) |> Seq.take 50 |> List.of_seq
  in
  Alcotest.(check bool) "same draws" true
    (List.for_all2 Ss_operators.Tuple.equal a b)

(* ------------------------------------------------------------------ *)
(* Disorder *)

let sorted_ts tuples =
  List.sort compare (List.map (fun t -> t.Ss_operators.Tuple.ts) tuples)

let test_disorder_in_order_identity () =
  let ts = Stream_gen.tuples (Rng.create 3) 100 in
  Alcotest.(check bool) "In_order is the identity" true
    (List.for_all2 Ss_operators.Tuple.equal ts
       (Stream_gen.reorder (Rng.create 4) Stream_gen.In_order ts));
  Alcotest.(check (float 1e-9)) "no disorder" 0.0
    (Stream_gen.disorder_fraction ts)

let test_disorder_preserves_multiplicity () =
  let ts = Stream_gen.tuples (Rng.create 3) 500 in
  List.iter
    (fun d ->
      let r = Stream_gen.reorder (Rng.create 5) d ts in
      Alcotest.(check int) "same length" (List.length ts) (List.length r);
      Alcotest.(check bool) "same timestamp multiset" true
        (sorted_ts ts = sorted_ts r);
      Alcotest.(check bool) "actually disordered" true
        (Stream_gen.disorder_fraction r > 0.0))
    [
      Stream_gen.Zipf_delay { alpha = 1.1; max_delay = 64 };
      Stream_gen.Bursty { burst = 32; period = 256 };
    ]

let test_disorder_deterministic () =
  let ts = Stream_gen.tuples (Rng.create 3) 300 in
  let d = Stream_gen.Zipf_delay { alpha = 1.1; max_delay = 32 } in
  Alcotest.(check bool) "same seed, same permutation" true
    (List.for_all2 Ss_operators.Tuple.equal
       (Stream_gen.reorder (Rng.create 7) d ts)
       (Stream_gen.reorder (Rng.create 7) d ts))

let test_disorder_parse_roundtrip () =
  List.iter
    (fun d ->
      match Stream_gen.parse_disorder (Stream_gen.disorder_to_string d) with
      | Ok d' -> Alcotest.(check bool) "roundtrip" true (d = d')
      | Error e -> Alcotest.fail e)
    [
      Stream_gen.In_order;
      Stream_gen.Zipf_delay { alpha = 1.1; max_delay = 64 };
      Stream_gen.Bursty { burst = 32; period = 256 };
    ];
  match Stream_gen.parse_disorder "sideways:9" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage accepted"

(* ------------------------------------------------------------------ *)
(* Profiler *)

let test_profile_identity () =
  let rng = Rng.create 1 in
  let p = Profiler.run ~samples:2000 rng Ss_operators.Stateless_ops.identity in
  Alcotest.(check int) "samples" 2000 p.Profiler.samples;
  Alcotest.(check (float 1e-9)) "selectivity 1" 1.0 p.Profiler.outputs_per_input;
  Alcotest.(check bool) "positive time" true (p.Profiler.mean_service_time > 0.0)

let test_profile_sampler_selectivity () =
  let rng = Rng.create 1 in
  let p =
    Profiler.run ~samples:4000 rng (Ss_operators.Stateless_ops.sampler ~keep_one_in:4)
  in
  Alcotest.(check (float 1e-3)) "one in four" 0.25 p.Profiler.outputs_per_input

let test_profile_compute_scales () =
  let rng = Rng.create 1 in
  let cheap =
    Profiler.run ~samples:500 rng (Ss_operators.Stateless_ops.compute ~iterations:10)
  in
  let costly =
    Profiler.run ~samples:500 rng
      (Ss_operators.Stateless_ops.compute ~iterations:10_000)
  in
  Alcotest.(check bool) "10_000 iterations cost more than 10" true
    (costly.Profiler.mean_service_time > cheap.Profiler.mean_service_time)

let test_profile_to_operator () =
  let rng = Rng.create 1 in
  let behavior = Ss_operators.Stateless_ops.sampler ~keep_one_in:4 in
  let p = Profiler.run ~samples:4000 rng behavior in
  let op = Profiler.to_operator behavior p in
  Alcotest.(check (float 1e-3)) "measured selectivity" 0.25
    op.Operator.output_selectivity;
  Alcotest.(check (float 1e-12)) "measured time" p.Profiler.mean_service_time
    op.Operator.service_time;
  let named = Profiler.to_operator ~name:"s1" behavior p in
  Alcotest.(check string) "renamed" "s1" named.Operator.name

let test_profile_windowed_selectivity () =
  let rng = Rng.create 1 in
  let behavior =
    Ss_operators.Window_ops.sum
      ~spec:{ Ss_operators.Window_ops.default_spec with
              Ss_operators.Window_ops.length = 100; slide = 10 }
      ()
  in
  let p = Profiler.run ~samples:10_000 rng behavior in
  (* One output every 10 inputs at steady state. *)
  Alcotest.(check bool)
    (Printf.sprintf "outputs/input %.3f near 0.1" p.Profiler.outputs_per_input)
    true
    (Float.abs (p.Profiler.outputs_per_input -. 0.1) < 0.01)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "ss_workload"
    [
      ( "random_topology",
        [
          quick "batches are valid with size bounds" test_generate_valid_batch;
          quick "edge budget" test_edge_budget;
          quick "explicit sizes" test_explicit_sizes;
          quick "size errors (Algorithm 5 guards)" test_size_errors;
          quick "binary operator placement" test_binary_operators_have_two_inputs;
          quick "source headroom" test_source_headroom;
          quick "deterministic testbed" test_testbed_deterministic;
          quick "behavior name suffixes" test_behavior_name_strips_suffix;
          quick "windowed selectivities" test_windowed_ops_have_selectivity;
          quick "partitioned zipf keys" test_partitioned_ops_have_zipf_keys;
          quick "service time spread" test_service_time_spread;
        ] );
      ( "stream_gen",
        [
          quick "timestamps and count" test_stream_timestamps_and_count;
          quick "key frequencies" test_stream_key_frequencies;
          quick "tags" test_stream_tags;
          quick "sequence equals batch" test_sequence_matches_tuples;
          quick "in-order disorder is identity" test_disorder_in_order_identity;
          quick "disorder preserves multiplicity"
            test_disorder_preserves_multiplicity;
          quick "disorder deterministic" test_disorder_deterministic;
          quick "disorder parse roundtrip" test_disorder_parse_roundtrip;
        ] );
      ( "profiler",
        [
          quick "identity" test_profile_identity;
          quick "sampler selectivity" test_profile_sampler_selectivity;
          quick "compute scales with iterations" test_profile_compute_scales;
          quick "profile to operator" test_profile_to_operator;
          quick "windowed selectivity" test_profile_windowed_selectivity;
        ] );
    ]
