(* Telemetry correctness: histogram window algebra and edge cases, the
   measured-profile feedback path's finiteness guarantees, and the
   Prometheus exposition format under hostile operator names. *)

open Ss_topology
module H = Ss_telemetry.Histogram
module T = Ss_telemetry.Telemetry

(* ------------------------------------------------------------------ *)
(* Histogram.diff *)

let test_diff_window () =
  let h = H.create () in
  List.iter (H.record h) [ 1e-4; 2e-4; 5e-3 ];
  let since = H.copy h in
  List.iter (H.record h) [ 1e-4; 0.5 ];
  let w = H.diff ~since h in
  Alcotest.(check int) "window count" 2 (H.count w);
  Alcotest.(check (float 1e-9)) "window sum" (1e-4 +. 0.5) (H.sum w);
  Alcotest.(check (float 1e-9)) "cumulative max kept" 0.5 (H.max_value w);
  (* the since snapshot is untouched *)
  Alcotest.(check int) "since intact" 3 (H.count since)

let test_diff_clamps_racy_snapshots () =
  (* A live "current" that reads older than the snapshot must clamp to an
     empty window, never go negative. *)
  let newer = H.create () in
  List.iter (H.record newer) [ 1e-3; 1e-3 ];
  let older = H.create () in
  H.record older 1e-3;
  let w = H.diff ~since:newer older in
  Alcotest.(check int) "clamped count" 0 (H.count w);
  Alcotest.(check (float 0.0)) "clamped sum" 0.0 (H.sum w)

let test_diff_identity () =
  let h = H.create () in
  List.iter (H.record h) [ 3e-5; 7e-2; 1.5 ];
  let w = H.diff ~since:(H.copy h) h in
  Alcotest.(check int) "empty window" 0 (H.count w)

(* ------------------------------------------------------------------ *)
(* percentile when every sample landed in the overflow bucket *)

let test_percentile_all_overflow () =
  let h = H.create () in
  for _ = 1 to 5 do
    H.record h 200.0
  done;
  let lower = H.bucket_upper (H.num_buckets - 2) in
  List.iter
    (fun q ->
      let p = H.percentile h q in
      Alcotest.(check bool)
        (Printf.sprintf "p%.0f finite" (100.0 *. q))
        true (Float.is_finite p);
      Alcotest.(check bool) "above the last finite bound" true (p >= lower);
      Alcotest.(check bool) "bounded by the observed max" true (p <= 200.0))
    [ 0.0; 0.5; 0.95; 0.99; 1.0 ];
  let s = H.snapshot h in
  Alcotest.(check bool) "snapshot percentiles finite" true
    (Float.is_finite s.H.p50 && Float.is_finite s.H.p95
   && Float.is_finite s.H.p99 && Float.is_finite s.H.max)

(* ------------------------------------------------------------------ *)
(* Telemetry.delta *)

let pipeline3 () =
  let ops =
    [|
      Operator.make ~service_time:1e-3 "src";
      Operator.make ~service_time:1e-3 "mid";
      Operator.make ~service_time:1e-3 "snk";
    |]
  in
  Topology.create_exn ops [ (0, 1, 1.0); (1, 2, 1.0) ]

let test_delta_windows_edges_and_histograms () =
  let topo = pipeline3 () in
  let c = T.Collector.create topo in
  let s = T.Collector.sink c in
  T.Sink.record_service s 1 2e-3;
  T.Sink.record_latency s 1 1e-2;
  T.Sink.incr_edge s 0;
  T.Sink.incr_edge s 0;
  T.Sink.incr_edge s 1;
  let r1 = T.Collector.report c in
  T.Sink.record_service s 1 4e-3;
  T.Sink.incr_edge s 0;
  let r2 = T.Collector.report c in
  let w = T.delta ~since:r1 r2 in
  Alcotest.(check int) "service window count" 1 (H.count w.T.service.(1));
  Alcotest.(check (float 1e-9)) "service window sum" 4e-3 (H.sum w.T.service.(1));
  Alcotest.(check int) "latency window empty" 0 (H.count w.T.latency.(1));
  (match w.T.edges with
  | [ (0, 1, a); (1, 2, b) ] ->
      Alcotest.(check int) "edge 0 window" 1 a;
      Alcotest.(check int) "edge 1 window" 0 b
  | _ -> Alcotest.fail "unexpected edge list shape")

(* ------------------------------------------------------------------ *)
(* to_profile finiteness *)

let test_to_profile_zero_consumption_is_finite () =
  let topo = pipeline3 () in
  let c = T.Collector.create topo in
  let report = T.Collector.report c in
  (* Nothing ran: every vertex consumed and produced zero. The profiles
     must still be finite everywhere (declared fallbacks, no 0/0). *)
  let consumed = [| 0; 0; 0 |] and produced = [| 0; 0; 0 |] in
  let profiles = T.to_profile topo ~consumed ~produced report in
  Array.iteri
    (fun v (p : Ss_workload.Profiler.profile) ->
      Alcotest.(check bool)
        (Printf.sprintf "vertex %d service finite" v)
        true
        (Float.is_finite p.Ss_workload.Profiler.mean_service_time);
      Alcotest.(check bool)
        (Printf.sprintf "vertex %d selectivity finite" v)
        true
        (Float.is_finite p.Ss_workload.Profiler.outputs_per_input))
    profiles

let test_to_profile_partial_run_is_finite () =
  let topo = pipeline3 () in
  let c = T.Collector.create topo in
  let s = T.Collector.sink c in
  T.Sink.record_service s 1 5e-4;
  let report = T.Collector.report c in
  (* Vertex 1 consumed but produced nothing (a filter that dropped its
     whole input); vertex 2 never saw a tuple. *)
  let consumed = [| 0; 100; 0 |] and produced = [| 100; 0; 0 |] in
  let profiles = T.to_profile topo ~consumed ~produced report in
  Alcotest.(check (float 1e-9)) "measured zero selectivity" 0.0
    profiles.(1).Ss_workload.Profiler.outputs_per_input;
  Array.iter
    (fun (p : Ss_workload.Profiler.profile) ->
      Alcotest.(check bool) "all finite" true
        (Float.is_finite p.Ss_workload.Profiler.mean_service_time
        && Float.is_finite p.Ss_workload.Profiler.outputs_per_input))
    profiles

(* ------------------------------------------------------------------ *)
(* Prometheus exposition under hostile label values *)

let hostile_topology () =
  let ops =
    [|
      Operator.make ~service_time:1e-3 "plain";
      Operator.make ~service_time:1e-3 "quo\"te";
      Operator.make ~service_time:1e-3 "back\\slash";
      Operator.make ~service_time:1e-3 "new\nline";
    |]
  in
  Topology.create_exn ops [ (0, 1, 1.0); (1, 2, 1.0); (2, 3, 1.0) ]

(* A minimal exposition-format lint: every non-comment non-blank line is
   `name{labels} value` or `name value`, on ONE line, with an even number
   of unescaped quotes and a parseable float value. *)
let lint_exposition text =
  String.split_on_char '\n' text
  |> List.iteri (fun i line ->
         if line <> "" && line.[0] <> '#' then begin
           let unescaped_quotes = ref 0 in
           String.iteri
             (fun j ch ->
               if ch = '"' && (j = 0 || line.[j - 1] <> '\\') then
                 incr unescaped_quotes)
             line;
           if !unescaped_quotes mod 2 <> 0 then
             Alcotest.failf "line %d has an odd number of quotes: %s" i line;
           match String.rindex_opt line ' ' with
           | None -> Alcotest.failf "line %d has no value: %s" i line
           | Some sp -> (
               let v =
                 String.sub line (sp + 1) (String.length line - sp - 1)
               in
               match float_of_string_opt v with
               | Some _ -> ()
               | None ->
                   Alcotest.failf "line %d value %S not a float: %s" i v line)
         end)

let test_prometheus_escapes_hostile_names () =
  let topo = hostile_topology () in
  let c = T.Collector.create topo in
  let s = T.Collector.sink c in
  T.Sink.record_service s 1 2e-3;
  T.Sink.record_latency s 1 1e-2;
  T.Sink.record_service s 3 1e-3;
  List.iter (fun e -> T.Sink.incr_edge s e) [ 0; 1; 2 ];
  let text = T.to_prometheus topo (T.Collector.report c) in
  lint_exposition text;
  let contains needle =
    let n = String.length needle and m = String.length text in
    let rec go i = i + n <= m && (String.sub text i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "quote escaped" true (contains {|quo\"te|});
  Alcotest.(check bool) "backslash escaped" true (contains {|back\\slash|});
  Alcotest.(check bool) "newline escaped" true (contains {|new\nline|});
  Alcotest.(check bool) "raw newline never inside a label" true
    (String.split_on_char '\n' text
    |> List.for_all (fun line ->
           (* a line that opens a label set also closes it *)
           String.contains line '{' = String.contains line '}'));
  Alcotest.(check bool) "overflow bucket exported" true
    (contains {|le="+Inf"|})

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "ss_telemetry"
    [
      ( "histogram",
        [
          quick "diff window" test_diff_window;
          quick "diff clamps racy snapshots" test_diff_clamps_racy_snapshots;
          quick "diff identity" test_diff_identity;
          quick "percentile all-overflow" test_percentile_all_overflow;
        ] );
      ( "feedback",
        [
          quick "delta windows" test_delta_windows_edges_and_histograms;
          quick "to_profile zero consumption"
            test_to_profile_zero_consumption_is_finite;
          quick "to_profile partial run" test_to_profile_partial_run_is_finite;
        ] );
      ( "prometheus",
        [
          quick "hostile names escaped" test_prometheus_escapes_hostile_names;
        ] );
    ]
