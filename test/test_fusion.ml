(* Tests for the compiled fused-chain tier: deploy-time staging
   ([Fused_compile]), count parity with the interpreted meta-operator and
   [Engine.replay], fallback to the interpreted walk, the generated
   closed-loop fixture, and the compiled cost model. *)

open Ss_topology
open Ss_operators
open Ss_runtime

let tuple values = Tuple.make values

let registry_of table v =
  match List.assoc_opt v table with
  | Some b -> b
  | None -> Alcotest.failf "no behavior registered for vertex %d" v

let identity_registry vs =
  registry_of (List.map (fun v -> (v, Stateless_ops.identity)) vs)

(* The fig11 shape with negligible service times: identity behaviors never
   spin, so the runs are fast while still exercising the diamond interior,
   the 5->4 back edge and the two distinct exits into the sink. *)
let fig11_fast () = Fixtures.fig11 [ 1e-4; 1e-4; 1e-4; 1e-4; 1e-4; 1e-4 ]

let fig11_group = [ 2; 3; 4 ]

let run_fig11 ~fusion ~seed ~tuples:count =
  Executor.run ~fused:[ fig11_group ] ~fusion ~seed
    ~source:
      (Executor.source_of_fn ~count (fun i -> tuple [| float_of_int i |]))
    ~registry:(identity_registry [ 1; 2; 3; 4; 5 ])
    (fig11_fast ())

(* ------------------------------------------------------------------ *)
(* Differential equivalence: compiled = interpreted = DES replay *)

let test_fig11_compiled_interpreted_replay () =
  let seed = 7 and tuples = 3000 in
  let compiled = run_fig11 ~fusion:`Compiled ~seed ~tuples in
  let interpreted = run_fig11 ~fusion:`Interpreted ~seed ~tuples in
  let replay_consumed, replay_produced =
    Ss_sim.Engine.replay ~fused:[ fig11_group ] ~seed ~tuples (fig11_fast ())
  in
  Alcotest.(check bool) "compiled finished" true
    (compiled.Executor.outcome = Supervision.Finished);
  Alcotest.(check (array int)) "consumed, compiled = interpreted"
    interpreted.Executor.consumed compiled.Executor.consumed;
  Alcotest.(check (array int)) "produced, compiled = interpreted"
    interpreted.Executor.produced compiled.Executor.produced;
  Alcotest.(check (array int)) "consumed, compiled = replay" replay_consumed
    compiled.Executor.consumed;
  Alcotest.(check (array int)) "produced, compiled = replay" replay_produced
    compiled.Executor.produced

(* A caller-supplied chain (the codegen contract) is matched by member set
   and must not change the counts either. The chain below reimplements the
   identity walk over fig11's group exactly as Fused_compile stages it. *)
let test_supplied_chain_matches_staged () =
  let seed = 11 and tuples = 2000 in
  let chain (env : Fused_compile.env) =
    let consumed = env.Fused_compile.consumed in
    let produced = env.Fused_compile.produced in
    let rng = env.Fused_compile.rng in
    let emit = env.Fused_compile.emit in
    let dist_2 = Ss_prelude.Discrete.of_weights [| 0.5; 0.5 |] in
    let dist_4 = Ss_prelude.Discrete.of_weights [| 0.35; 0.65 |] in
    let rec step_2 t =
      consumed.(2) <- consumed.(2) + 1;
      produced.(2) <- produced.(2) + 1;
      match Ss_prelude.Discrete.sample rng dist_2 with
      | 0 -> step_3 t
      | _ -> step_4 t
    and step_4 t =
      consumed.(4) <- consumed.(4) + 1;
      produced.(4) <- produced.(4) + 1;
      match Ss_prelude.Discrete.sample rng dist_4 with
      | 0 -> step_3 t
      | _ -> emit 4 5 t
    and step_3 t =
      consumed.(3) <- consumed.(3) + 1;
      produced.(3) <- produced.(3) + 1;
      ignore (Ss_prelude.Rng.float rng : float);
      emit 3 5 t
    in
    step_2
  in
  let supplied =
    Executor.run
      ~fused:[ fig11_group ]
      ~chains:[ (fig11_group, chain) ]
      ~seed
      ~source:
        (Executor.source_of_fn ~count:tuples (fun i ->
             tuple [| float_of_int i |]))
      ~registry:(identity_registry [ 1; 2; 3; 4; 5 ])
      (fig11_fast ())
  in
  let staged = run_fig11 ~fusion:`Compiled ~seed ~tuples in
  Alcotest.(check (array int)) "consumed, supplied chain = staged"
    staged.Executor.consumed supplied.Executor.consumed;
  Alcotest.(check (array int)) "produced, supplied chain = staged"
    staged.Executor.produced supplied.Executor.produced

(* ------------------------------------------------------------------ *)
(* Property: over random fusable chains, the compiled closed loop and the
   interpreted walk report identical per-vertex counts — including members
   without inline hooks (flat_split goes through Behavior.instantiate) and
   members that drop tuples mid-chain. *)

let behavior_of_pick = function
  | 0 -> Stateless_ops.identity
  | 1 -> Stateless_ops.scale ~factor:2.0
  | 2 -> Stateless_ops.threshold_filter ~index:0 ~threshold:0.5
  | 3 -> Stateless_ops.sampler ~keep_one_in:3
  | _ -> Stateless_ops.flat_split ~parts:2

let test_random_chain_equivalence =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:30
       ~name:"compiled closed loop = interpreted walk on random chains"
       (QCheck.make
          QCheck.Gen.(
            pair (int_range 0 1000)
              (list_size (int_range 2 5) (int_bound 4))))
       (fun (seed, picks) ->
         let k = List.length picks in
         let ops =
           Array.init (k + 1) (fun v ->
               if v = 0 then Operator.make ~service_time:1e-7 "src"
               else Operator.make ~service_time:1e-7 (Printf.sprintf "m%d" v))
         in
         let edges = List.init k (fun v -> (v, v + 1, 1.0)) in
         let t = Topology.create_exn ops edges in
         let registry =
           registry_of
             (List.mapi (fun i pick -> (i + 1, behavior_of_pick pick)) picks)
         in
         let members = List.init k (fun i -> i + 1) in
         let run fusion =
           Executor.run ~fused:[ members ] ~fusion ~seed
             ~source:
               (Executor.source_of_fn ~count:200 (fun i ->
                    tuple [| float_of_int i /. 200.0 |]))
             ~registry t
         in
         let compiled = run `Compiled in
         let interpreted = run `Interpreted in
         compiled.Executor.consumed = interpreted.Executor.consumed
         && compiled.Executor.produced = interpreted.Executor.produced))

(* ------------------------------------------------------------------ *)
(* Stateful members: the inline hooks (Inline_fold / Inline_window) keep
   the closed loop available for chains containing keyed counters and
   sliding windows, with counts identical to the interpreted walk. *)

let stateful_chain () =
  let keys = Ss_prelude.Discrete.uniform 6 in
  let ops =
    [|
      Operator.make ~service_time:1e-7 "src";
      Operator.make ~service_time:1e-7 "pre";
      Operator.make
        ~kind:(Operator.Partitioned_stateful keys)
        ~service_time:1e-7 "count";
      Operator.make ~kind:Operator.Stateful ~input_selectivity:8.0
        ~service_time:1e-7 "wsum";
      Operator.make ~service_time:1e-7 "snk";
    |]
  in
  Topology.create_exn ops [ (0, 1, 1.0); (1, 2, 1.0); (2, 3, 1.0); (3, 4, 1.0) ]

let stateful_registry () =
  registry_of
    [
      (1, Stateless_ops.identity);
      (2, Join_ops.count_by_key ());
      ( 3,
        Window_ops.sum
          ~spec:{ Window_ops.length = 32; slide = 8; index = 0; per_key = false }
          () );
      (4, Stateless_ops.identity);
    ]

let test_stateful_chain_compiled_equals_interpreted () =
  let seed = 19 and tuples = 2500 in
  let run fusion =
    Executor.run
      ~fused:[ [ 1; 2; 3 ] ]
      ~fusion ~seed
      ~source:
        (Executor.source_of_fn ~count:tuples (fun i ->
             Tuple.make ~ts:0.0 ~key:(i mod 6) ~tag:0 [| float_of_int i |]))
      ~registry:(stateful_registry ())
      (stateful_chain ())
  in
  let compiled = run `Compiled in
  let interpreted = run `Interpreted in
  Alcotest.(check bool) "compiled finished" true
    (compiled.Executor.outcome = Supervision.Finished);
  Alcotest.(check (array int)) "consumed, compiled = interpreted"
    interpreted.Executor.consumed compiled.Executor.consumed;
  Alcotest.(check (array int)) "produced, compiled = interpreted"
    interpreted.Executor.produced compiled.Executor.produced;
  (* the window fired: 2500 tuples through length 32 / slide 8 *)
  Alcotest.(check bool) "window fired" true (compiled.Executor.produced.(3) > 0)

(* ------------------------------------------------------------------ *)
(* Fission of a whole fused group: a linear group whose front operator is
   replicated deploys as emitter + staged workers + collector, with counts
   identical to the single-actor deployment and to the DES replay. *)

let replicated_identity_topology replicas =
  let ops =
    [|
      Operator.make ~service_time:1e-7 "src";
      Operator.make ~replicas ~service_time:1e-7 "a";
      Operator.make ~service_time:1e-7 "b";
      Operator.make ~service_time:1e-7 "c";
      Operator.make ~service_time:1e-7 "snk";
    |]
  in
  Topology.create_exn ops [ (0, 1, 1.0); (1, 2, 1.0); (2, 3, 1.0); (3, 4, 1.0) ]

let test_replicated_group_matches_replay () =
  let seed = 23 and tuples = 4000 in
  let group = [ 1; 2; 3 ] in
  let run fusion =
    Executor.run ~fused:[ group ] ~fusion ~seed
      ~source:
        (Executor.source_of_fn ~count:tuples (fun i ->
             tuple [| float_of_int i |]))
      ~registry:(identity_registry [ 1; 2; 3; 4 ])
      (replicated_identity_topology 3)
  in
  let compiled = run `Compiled in
  let interpreted = run `Interpreted in
  let replay_consumed, replay_produced =
    Ss_sim.Engine.replay ~fused:[ group ] ~seed ~tuples
      (replicated_identity_topology 3)
  in
  Alcotest.(check bool) "compiled finished" true
    (compiled.Executor.outcome = Supervision.Finished);
  Alcotest.(check (array int)) "consumed, compiled = interpreted replicas"
    interpreted.Executor.consumed compiled.Executor.consumed;
  Alcotest.(check (array int)) "consumed, replicated = replay" replay_consumed
    compiled.Executor.consumed;
  Alcotest.(check (array int)) "produced, replicated = replay" replay_produced
    compiled.Executor.produced

let test_replicated_group_with_filter_matches_single () =
  (* A value-deterministic filter member: counts are replica-split
     invariant, so the fission deployment must reproduce the single-actor
     deployment exactly. *)
  let build replicas =
    let ops =
      [|
        Operator.make ~service_time:1e-7 "src";
        Operator.make ~replicas ~service_time:1e-7 "scale";
        Operator.make ~output_selectivity:0.5 ~service_time:1e-7 "filter";
        Operator.make ~service_time:1e-7 "snk";
      |]
    in
    Topology.create_exn ops [ (0, 1, 1.0); (1, 2, 1.0); (2, 3, 1.0) ]
  in
  let registry =
    registry_of
      [
        (1, Stateless_ops.scale ~factor:1.0);
        (2, Stateless_ops.threshold_filter ~index:0 ~threshold:0.5);
        (3, Stateless_ops.identity);
      ]
  in
  let seed = 29 and tuples = 3000 in
  let run replicas =
    Executor.run
      ~fused:[ [ 1; 2 ] ]
      ~fusion:`Compiled ~seed
      ~source:
        (Executor.source_of_fn ~count:tuples (fun i ->
             tuple [| float_of_int i /. float_of_int tuples |]))
      ~registry (build replicas)
  in
  let single = run 1 in
  let fissioned = run 4 in
  Alcotest.(check (array int)) "consumed, fission = single"
    single.Executor.consumed fissioned.Executor.consumed;
  Alcotest.(check (array int)) "produced, fission = single"
    single.Executor.produced fissioned.Executor.produced;
  Alcotest.(check bool) "the filter dropped something" true
    (fissioned.Executor.produced.(2) < fissioned.Executor.consumed.(2))

let test_stateful_replicated_group_matches_single () =
  (* Keyed routing keeps every key's state on one worker even when the
     partitioned member is not the front: per-key results and per-vertex
     counts equal the single-actor deployment. *)
  let nkeys = 6 in
  let keys = Ss_prelude.Discrete.uniform nkeys in
  let build replicas =
    let ops =
      [|
        Operator.make ~service_time:1e-7 "src";
        Operator.make ~replicas ~service_time:1e-7 "pre";
        Operator.make
          ~kind:(Operator.Partitioned_stateful keys)
          ~service_time:1e-7 "count";
        Operator.make ~service_time:1e-7 "snk";
      |]
    in
    Topology.create_exn ops [ (0, 1, 1.0); (1, 2, 1.0); (2, 3, 1.0) ]
  in
  let seed = 31 and tuples = 3000 in
  let run replicas =
    let final = Hashtbl.create 16 in
    let final_m = Mutex.create () in
    let registry =
      registry_of
        [
          (1, Stateless_ops.identity);
          (2, Join_ops.count_by_key ());
          ( 3,
            Behavior.make ~name:"snk" (fun () ->
                fun (t : Tuple.t) ->
                  Mutex.lock final_m;
                  let k = t.Tuple.key in
                  let c = int_of_float (Tuple.value t 0) in
                  let prev =
                    Option.value ~default:0 (Hashtbl.find_opt final k)
                  in
                  Hashtbl.replace final k (max prev c);
                  Mutex.unlock final_m;
                  []) );
        ]
    in
    let m =
      Executor.run
        ~fused:[ [ 1; 2 ] ]
        ~fusion:`Compiled ~seed
        ~source:
          (Executor.source_of_fn ~count:tuples (fun i ->
               Tuple.make ~ts:0.0 ~key:(i mod nkeys) ~tag:0
                 [| float_of_int i |]))
        ~registry (build replicas)
    in
    (m, final)
  in
  let single, _ = run 1 in
  let fissioned, final = run 3 in
  Alcotest.(check (array int)) "consumed, keyed fission = single"
    single.Executor.consumed fissioned.Executor.consumed;
  Alcotest.(check (array int)) "produced, keyed fission = single"
    single.Executor.produced fissioned.Executor.produced;
  for k = 0 to nkeys - 1 do
    Alcotest.(check int)
      (Printf.sprintf "final count for key %d" k)
      (tuples / nkeys)
      (Option.value ~default:0 (Hashtbl.find_opt final k))
  done

(* ------------------------------------------------------------------ *)
(* Planner eligibility *)

let evented_passthrough =
  Behavior.make_evented ~name:"ev_pass" (fun () ->
      {
        Behavior.efn = (fun t -> [ t ]);
        on_watermark = (fun _ -> []);
        on_late = (fun _ -> []);
        eexport = (fun () -> []);
        eimport = (fun _ -> ());
      })

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i =
    i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1))
  in
  nl = 0 || go 0

let test_plan_rejects_evented () =
  let t =
    Topology.create_exn
      [|
        Operator.make ~service_time:1e-7 "src";
        Operator.make ~service_time:1e-7 "a";
        Operator.make ~service_time:1e-7 "b";
      |]
      [ (0, 1, 1.0); (1, 2, 1.0) ]
  in
  let registry =
    registry_of [ (1, Stateless_ops.identity); (2, evented_passthrough) ]
  in
  match Fused_compile.plan t ~members:[ 1; 2 ] ~registry with
  | Ok _ -> Alcotest.fail "expected the planner to decline an evented member"
  | Error msg ->
      Alcotest.(check bool)
        (Printf.sprintf "message names the evented member: %s" msg)
        true
        (contains ~needle:"evented" msg)

let test_plan_rejects_illegal_group () =
  (* Two entry points: front_end_of's legality error must surface. *)
  let t = Fixtures.diamond ~pa:0.5 ~t_src:0.1 ~t_a:0.1 ~t_b:0.1 ~t_sink:0.1 in
  let registry = identity_registry [ 1; 2; 3 ] in
  match Fused_compile.plan t ~members:[ 1; 2 ] ~registry with
  | Ok _ -> Alcotest.fail "expected the planner to decline two entry points"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Telemetry on the compiled tier: the staged loop is instrumented in
   place (local edge counters flushed on a cadence, latency/service
   samples on the interpreted 1-in-k schedule), so a telemetry run no
   longer forces the interpreted walk — and both modes must report the
   same counts, the same edge transfers, and the same histogram sample
   counts. *)

module H = Ss_telemetry.Histogram
module T = Ss_telemetry.Telemetry

let run_fig11_telemetry ~fusion ~sample ~seed ~tuples:count =
  Executor.run ~fused:[ fig11_group ] ~fusion ~seed
    ~instrument:
      {
        Executor.default_instrument with
        telemetry = true;
        telemetry_sample = sample;
      }
    ~source:
      (Executor.source_of_fn ~count (fun i -> tuple [| float_of_int i |]))
    ~registry:(identity_registry [ 1; 2; 3; 4; 5 ])
    (fig11_fast ())

let check_telemetry_parity ~n (compiled : Executor.metrics)
    (interpreted : Executor.metrics) =
  let ct = Option.get compiled.Executor.telemetry in
  let it = Option.get interpreted.Executor.telemetry in
  List.iter2
    (fun (u, v, c) (u', v', c') ->
      Alcotest.(check bool) "edge list shapes agree" true (u = u' && v = v');
      Alcotest.(check int)
        (Printf.sprintf "edge %d->%d transfers" u v)
        c' c)
    ct.T.edges it.T.edges;
  for v = 0 to n - 1 do
    Alcotest.(check int)
      (Printf.sprintf "vertex %d service samples" v)
      (H.count it.T.service.(v))
      (H.count ct.T.service.(v));
    Alcotest.(check int)
      (Printf.sprintf "vertex %d latency samples" v)
      (H.count it.T.latency.(v))
      (H.count ct.T.latency.(v))
  done

let test_telemetry_compiled_parity () =
  let seed = 13 and tuples = 1500 in
  let compiled =
    run_fig11_telemetry ~fusion:`Compiled ~sample:1 ~seed ~tuples
  in
  let interpreted =
    run_fig11_telemetry ~fusion:`Interpreted ~sample:1 ~seed ~tuples
  in
  Alcotest.(check (array int)) "consumed, compiled telemetry = interpreted"
    interpreted.Executor.consumed compiled.Executor.consumed;
  Alcotest.(check (array int)) "produced, compiled telemetry = interpreted"
    interpreted.Executor.produced compiled.Executor.produced;
  check_telemetry_parity ~n:6 compiled interpreted;
  (* sample=1 on identity members: every consumed tuple is timed *)
  let ct = Option.get compiled.Executor.telemetry in
  List.iter
    (fun v ->
      Alcotest.(check int)
        (Printf.sprintf "vertex %d timed every tuple" v)
        compiled.Executor.consumed.(v)
        (H.count ct.T.service.(v)))
    fig11_group

let test_telemetry_compiled_parity_sampled () =
  let seed = 37 and tuples = 1777 in
  let compiled =
    run_fig11_telemetry ~fusion:`Compiled ~sample:5 ~seed ~tuples
  in
  let interpreted =
    run_fig11_telemetry ~fusion:`Interpreted ~sample:5 ~seed ~tuples
  in
  check_telemetry_parity ~n:6 compiled interpreted

let test_telemetry_fission_parity () =
  (* Same contract inside a replicated fused group: each worker instruments
     its own staged loop; the merged report must match the interpreted
     deployment exactly. *)
  let seed = 41 and tuples = 2000 in
  let group = [ 1; 2; 3 ] in
  let run fusion =
    Executor.run ~fused:[ group ] ~fusion ~seed
      ~instrument:
        {
          Executor.default_instrument with
          telemetry = true;
          telemetry_sample = 3;
        }
      ~source:
        (Executor.source_of_fn ~count:tuples (fun i ->
             tuple [| float_of_int i |]))
      ~registry:(identity_registry [ 1; 2; 3; 4 ])
      (replicated_identity_topology 3)
  in
  let compiled = run `Compiled in
  let interpreted = run `Interpreted in
  Alcotest.(check (array int)) "consumed, fission telemetry parity"
    interpreted.Executor.consumed compiled.Executor.consumed;
  check_telemetry_parity ~n:5 compiled interpreted;
  (* the chain's own edge counters cover internal and outgoing edges *)
  let ct = Option.get compiled.Executor.telemetry in
  List.iter
    (fun (u, v, c) ->
      Alcotest.(check int) (Printf.sprintf "edge %d->%d exact" u v) tuples c)
    ct.T.edges

(* ------------------------------------------------------------------ *)
(* Flush protocol: local counters drain to the shared sinks every
   [flush_every] tuples, at end-of-stream, and on failure. *)

let test_flush_on_eos_with_huge_budget () =
  (* A budget far above the stream length: only the end-of-stream flush
     can account for the counts and edge transfers. *)
  let seed = 43 and tuples = 800 in
  let m =
    Executor.run ~fused:[ fig11_group ] ~fusion:`Compiled ~seed
      ~flush_every:max_int
      ~instrument:
        { Executor.default_instrument with telemetry = true }
      ~source:
        (Executor.source_of_fn ~count:tuples (fun i ->
             tuple [| float_of_int i |]))
      ~registry:(identity_registry [ 1; 2; 3; 4; 5 ])
      (fig11_fast ())
  in
  let baseline = run_fig11 ~fusion:`Interpreted ~seed ~tuples in
  Alcotest.(check (array int)) "counts flushed at Eos"
    baseline.Executor.consumed m.Executor.consumed;
  let t = Option.get m.Executor.telemetry in
  let total_in_group =
    List.fold_left
      (fun acc (u, v, c) ->
        if List.mem u fig11_group || List.mem v fig11_group then acc + c
        else acc)
      0 t.T.edges
  in
  Alcotest.(check bool) "edge transfers flushed at Eos" true
    (total_in_group > 0)

let test_flush_on_failure () =
  (* The sink dies mid-stream; the fused actor is cancelled while holding
     unflushed local counters. Fun.protect must still drain them, so the
     failed run reports the work that actually happened. *)
  let ops =
    [|
      Operator.make ~service_time:1e-7 "src";
      Operator.make ~service_time:1e-7 "a";
      Operator.make ~service_time:1e-7 "b";
      Operator.make ~service_time:1e-7 "snk";
    |]
  in
  let t = Topology.create_exn ops [ (0, 1, 1.0); (1, 2, 1.0); (2, 3, 1.0) ] in
  let registry =
    registry_of
      [
        (1, Stateless_ops.identity);
        (2, Stateless_ops.identity);
        ( 3,
          Behavior.make ~name:"bomb" (fun () ->
              let n = ref 0 in
              fun t ->
                incr n;
                if !n > 100 then failwith "sink bomb";
                [ t ]) );
      ]
  in
  let m =
    Executor.run
      ~fused:[ [ 1; 2 ] ]
      ~fusion:`Compiled ~flush_every:max_int ~seed:47
      ~source:
        (Executor.source_of_fn ~count:100000 (fun i ->
             tuple [| float_of_int i |]))
      ~registry t
  in
  Alcotest.(check bool) "run failed" true
    (match m.Executor.outcome with
    | Supervision.Actor_failed _ -> true
    | _ -> false);
  Alcotest.(check bool) "fused counts flushed despite the failure" true
    (m.Executor.consumed.(1) > 0 && m.Executor.consumed.(2) > 0)

let test_flush_every_validation () =
  Alcotest.check_raises "flush_every 0 rejected"
    (Invalid_argument "Executor.run: flush_every must be >= 1") (fun () ->
      ignore
        (Executor.run ~flush_every:0
           ~source:(Executor.source_of_fn ~count:1 (fun _ -> tuple [| 0.0 |]))
           ~registry:(identity_registry [ 1 ])
           (Topology.create_exn
              [|
                Operator.make ~service_time:1e-7 "src";
                Operator.make ~service_time:1e-7 "a";
              |]
              [ (0, 1, 1.0) ])))

(* ------------------------------------------------------------------ *)
(* Fallback paths: runs that cannot use the compiled tier must still
   report the same counts. *)

let test_mixed_groups_per_group_fallback () =
  (* Two fused groups in one run: [1;2] stages compiled, [3;4] contains an
     evented member so the planner declines it and only that group walks
     interpreted. Counts must equal the all-interpreted run. *)
  let build () =
    Topology.create_exn
      (Array.init 5 (fun v ->
           Operator.make ~service_time:1e-7
             (if v = 0 then "src" else Printf.sprintf "m%d" v)))
      [ (0, 1, 1.0); (1, 2, 1.0); (2, 3, 1.0); (3, 4, 1.0) ]
  in
  let registry =
    registry_of
      [
        (1, Stateless_ops.identity);
        (2, Stateless_ops.scale ~factor:3.0);
        (3, Stateless_ops.identity);
        (4, evented_passthrough);
      ]
  in
  let run fusion =
    Executor.run
      ~fused:[ [ 1; 2 ]; [ 3; 4 ] ]
      ~fusion ~seed:17
      ~source:
        (Executor.source_of_fn ~count:800 (fun i ->
             tuple [| float_of_int i |]))
      ~registry (build ())
  in
  let mixed = run `Compiled in
  let interpreted = run `Interpreted in
  Alcotest.(check (array int)) "consumed, mixed = interpreted"
    interpreted.Executor.consumed mixed.Executor.consumed;
  Alcotest.(check (array int)) "produced, mixed = interpreted"
    interpreted.Executor.produced mixed.Executor.produced

(* ------------------------------------------------------------------ *)
(* Generated closed-loop fixture: the checked-in examples/generated_fig11
   program (emitted with --fusion closed-loop) must reproduce the exact
   per-vertex counts the DES replay predicts for its seed and stream. *)

let fixture_exe = "../examples/generated_fig11/fig11_pipeline.exe"

let test_generated_fixture_counts () =
  let ic = Unix.open_process_in fixture_exe in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  let status = Unix.close_process_in ic in
  Alcotest.(check bool) "fixture exited cleanly" true
    (status = Unix.WEXITED 0);
  let consumed = Array.make 6 (-1) and produced = Array.make 6 (-1) in
  List.iter
    (fun line ->
      try
        Scanf.sscanf line "vertex %d: consumed %d, produced %d"
          (fun v c p ->
            consumed.(v) <- c;
            produced.(v) <- p)
      with Scanf.Scan_failure _ | End_of_file | Failure _ -> ())
    !lines;
  (* The fixture was generated from fig11_table1.xml with seed 42 over
     4000 tuples; Fixtures.table1 is the same topology. *)
  let replay_consumed, replay_produced =
    Ss_sim.Engine.replay ~fused:[ fig11_group ] ~seed:42 ~tuples:4000
      (Fixtures.table1 ())
  in
  Alcotest.(check (array int)) "fixture consumed = replay" replay_consumed
    consumed;
  Alcotest.(check (array int)) "fixture produced = replay" replay_produced
    produced

(* ------------------------------------------------------------------ *)
(* Compiled cost model (Algorithm 3 under the closed-loop tier) *)

let test_compiled_cost_below_interpreted () =
  let t = Fixtures.table1 () in
  let interpreted =
    Ss_core.Fusion.service_time t fig11_group |> Result.get_ok
  in
  let compiled =
    Ss_core.Fusion.service_time ~execution:`Compiled t fig11_group
    |> Result.get_ok
  in
  Alcotest.(check bool)
    (Printf.sprintf "compiled %.9f < interpreted %.9f" compiled interpreted)
    true (compiled < interpreted);
  (* The discount is floored: an absurd overhead can at most halve each
     member, so the compiled estimate is exactly half the interpreted one. *)
  let floored =
    Ss_core.Fusion.service_time ~execution:`Compiled ~dispatch_overhead:1.0 t
      fig11_group
    |> Result.get_ok
  in
  Alcotest.(check (float 1e-12)) "floor at half" (0.5 *. interpreted) floored

let test_stateful_discount_costing () =
  (* Stateful members shed only a fraction of the dispatch overhead: a
     chain with a stateful interior prices between the interpreted walk
     and the equivalent all-stateless compiled chain. *)
  let build kind =
    Topology.create_exn
      [|
        Operator.make ~service_time:1e-7 "src";
        Operator.make ~service_time:1e-4 "a";
        Operator.make ~kind ~service_time:1e-4 "b";
        Operator.make ~service_time:1e-4 "c";
      |]
      [ (0, 1, 1.0); (1, 2, 1.0); (2, 3, 1.0) ]
  in
  let members = [ 1; 2; 3 ] in
  let time ?stateful_discount ~execution t =
    Ss_core.Fusion.service_time ?stateful_discount ~execution t members
    |> Result.get_ok
  in
  let stateless = build Operator.Stateless in
  let stateful = build Operator.Stateful in
  let interp = time ~execution:`Interpreted stateful in
  let comp_stateful = time ~execution:`Compiled stateful in
  let comp_stateless = time ~execution:`Compiled stateless in
  Alcotest.(check (float 1e-15)) "interpreted ignores the kind"
    (time ~execution:`Interpreted stateless)
    interp;
  Alcotest.(check bool) "stateful compiled below interpreted" true
    (comp_stateful < interp);
  Alcotest.(check bool) "stateful discount smaller than stateless" true
    (comp_stateless < comp_stateful);
  (* the exact gap: (1 - discount) * overhead on the one stateful member *)
  Alcotest.(check (float 1e-15))
    "gap is (1 - discount) * overhead"
    ((1.0 -. Ss_core.Fusion.default_stateful_discount)
    *. Ss_core.Fusion.default_dispatch_overhead)
    (comp_stateful -. comp_stateless);
  (* discount 1.0 restores stateless pricing *)
  Alcotest.(check (float 1e-15)) "discount 1.0 = stateless pricing"
    comp_stateless
    (time ~stateful_discount:1.0 ~execution:`Compiled stateful)

let test_fig11_decision_no_worse_compiled () =
  (* Table 1: fusion is feasible interpreted; it must stay feasible — and
     price strictly lower — under the compiled tier. *)
  let t = Fixtures.table1 () in
  let outcome execution =
    Ss_core.Fusion.apply ~execution t fig11_group |> Result.get_ok
  in
  let interp = outcome `Interpreted and comp = outcome `Compiled in
  Alcotest.(check bool) "interpreted feasible" false
    interp.Ss_core.Fusion.creates_bottleneck;
  Alcotest.(check bool) "compiled stays feasible" false
    comp.Ss_core.Fusion.creates_bottleneck;
  Alcotest.(check bool) "compiled prices lower" true
    (comp.Ss_core.Fusion.fused_service_time
    < interp.Ss_core.Fusion.fused_service_time);
  Alcotest.(check bool) "throughput no worse" true
    (comp.Ss_core.Fusion.throughput_ratio
     >= interp.Ss_core.Fusion.throughput_ratio -. 1e-9)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "ss_fusion"
    [
      ( "differential",
        [
          quick "fig11: compiled = interpreted = replay"
            test_fig11_compiled_interpreted_replay;
          quick "supplied chain = staged chain"
            test_supplied_chain_matches_staged;
          test_random_chain_equivalence;
        ] );
      ( "stateful",
        [
          quick "stateful chain: compiled = interpreted"
            test_stateful_chain_compiled_equals_interpreted;
        ] );
      ( "fission",
        [
          quick "replicated group = single actor = replay"
            test_replicated_group_matches_replay;
          quick "replicated group with a filter = single actor"
            test_replicated_group_with_filter_matches_single;
          quick "keyed stateful group survives fission"
            test_stateful_replicated_group_matches_single;
        ] );
      ( "telemetry",
        [
          quick "compiled = interpreted, sample every tuple"
            test_telemetry_compiled_parity;
          quick "compiled = interpreted, 1-in-5 sampling"
            test_telemetry_compiled_parity_sampled;
          quick "parity inside fission replicas" test_telemetry_fission_parity;
        ] );
      ( "flush",
        [
          quick "end-of-stream flush with a huge budget"
            test_flush_on_eos_with_huge_budget;
          quick "failure flush drains local counters" test_flush_on_failure;
          quick "flush_every validation" test_flush_every_validation;
        ] );
      ( "planner",
        [
          quick "declines evented members" test_plan_rejects_evented;
          quick "declines illegal groups" test_plan_rejects_illegal_group;
        ] );
      ( "fallback",
        [
          quick "per-group fallback in mixed runs"
            test_mixed_groups_per_group_fallback;
        ] );
      ( "fixture",
        [ quick "generated closed loop matches replay" test_generated_fixture_counts ] );
      ( "cost model",
        [
          quick "compiled prices below interpreted"
            test_compiled_cost_below_interpreted;
          quick "stateful members earn a reduced discount"
            test_stateful_discount_costing;
          quick "fig11 decision unchanged-or-better"
            test_fig11_decision_no_worse_compiled;
        ] );
    ]
