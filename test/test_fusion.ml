(* Tests for the compiled fused-chain tier: deploy-time staging
   ([Fused_compile]), count parity with the interpreted meta-operator and
   [Engine.replay], fallback to the interpreted walk, the generated
   closed-loop fixture, and the compiled cost model. *)

open Ss_topology
open Ss_operators
open Ss_runtime

let tuple values = Tuple.make values

let registry_of table v =
  match List.assoc_opt v table with
  | Some b -> b
  | None -> Alcotest.failf "no behavior registered for vertex %d" v

let identity_registry vs =
  registry_of (List.map (fun v -> (v, Stateless_ops.identity)) vs)

(* The fig11 shape with negligible service times: identity behaviors never
   spin, so the runs are fast while still exercising the diamond interior,
   the 5->4 back edge and the two distinct exits into the sink. *)
let fig11_fast () = Fixtures.fig11 [ 1e-4; 1e-4; 1e-4; 1e-4; 1e-4; 1e-4 ]

let fig11_group = [ 2; 3; 4 ]

let run_fig11 ~fusion ~seed ~tuples:count =
  Executor.run ~fused:[ fig11_group ] ~fusion ~seed
    ~source:
      (Executor.source_of_fn ~count (fun i -> tuple [| float_of_int i |]))
    ~registry:(identity_registry [ 1; 2; 3; 4; 5 ])
    (fig11_fast ())

(* ------------------------------------------------------------------ *)
(* Differential equivalence: compiled = interpreted = DES replay *)

let test_fig11_compiled_interpreted_replay () =
  let seed = 7 and tuples = 3000 in
  let compiled = run_fig11 ~fusion:`Compiled ~seed ~tuples in
  let interpreted = run_fig11 ~fusion:`Interpreted ~seed ~tuples in
  let replay_consumed, replay_produced =
    Ss_sim.Engine.replay ~fused:[ fig11_group ] ~seed ~tuples (fig11_fast ())
  in
  Alcotest.(check bool) "compiled finished" true
    (compiled.Executor.outcome = Supervision.Finished);
  Alcotest.(check (array int)) "consumed, compiled = interpreted"
    interpreted.Executor.consumed compiled.Executor.consumed;
  Alcotest.(check (array int)) "produced, compiled = interpreted"
    interpreted.Executor.produced compiled.Executor.produced;
  Alcotest.(check (array int)) "consumed, compiled = replay" replay_consumed
    compiled.Executor.consumed;
  Alcotest.(check (array int)) "produced, compiled = replay" replay_produced
    compiled.Executor.produced

(* A caller-supplied chain (the codegen contract) is matched by member set
   and must not change the counts either. The chain below reimplements the
   identity walk over fig11's group exactly as Fused_compile stages it. *)
let test_supplied_chain_matches_staged () =
  let seed = 11 and tuples = 2000 in
  let chain (env : Fused_compile.env) =
    let consumed = env.Fused_compile.consumed in
    let produced = env.Fused_compile.produced in
    let rng = env.Fused_compile.rng in
    let emit = env.Fused_compile.emit in
    let dist_2 = Ss_prelude.Discrete.of_weights [| 0.5; 0.5 |] in
    let dist_4 = Ss_prelude.Discrete.of_weights [| 0.35; 0.65 |] in
    let rec step_2 t =
      consumed.(2) <- consumed.(2) + 1;
      produced.(2) <- produced.(2) + 1;
      match Ss_prelude.Discrete.sample rng dist_2 with
      | 0 -> step_3 t
      | _ -> step_4 t
    and step_4 t =
      consumed.(4) <- consumed.(4) + 1;
      produced.(4) <- produced.(4) + 1;
      match Ss_prelude.Discrete.sample rng dist_4 with
      | 0 -> step_3 t
      | _ -> emit 4 5 t
    and step_3 t =
      consumed.(3) <- consumed.(3) + 1;
      produced.(3) <- produced.(3) + 1;
      ignore (Ss_prelude.Rng.float rng : float);
      emit 3 5 t
    in
    step_2
  in
  let supplied =
    Executor.run
      ~fused:[ fig11_group ]
      ~chains:[ (fig11_group, chain) ]
      ~seed
      ~source:
        (Executor.source_of_fn ~count:tuples (fun i ->
             tuple [| float_of_int i |]))
      ~registry:(identity_registry [ 1; 2; 3; 4; 5 ])
      (fig11_fast ())
  in
  let staged = run_fig11 ~fusion:`Compiled ~seed ~tuples in
  Alcotest.(check (array int)) "consumed, supplied chain = staged"
    staged.Executor.consumed supplied.Executor.consumed;
  Alcotest.(check (array int)) "produced, supplied chain = staged"
    staged.Executor.produced supplied.Executor.produced

(* ------------------------------------------------------------------ *)
(* Property: over random fusable chains, the compiled closed loop and the
   interpreted walk report identical per-vertex counts — including members
   without inline hooks (flat_split goes through Behavior.instantiate) and
   members that drop tuples mid-chain. *)

let behavior_of_pick = function
  | 0 -> Stateless_ops.identity
  | 1 -> Stateless_ops.scale ~factor:2.0
  | 2 -> Stateless_ops.threshold_filter ~index:0 ~threshold:0.5
  | 3 -> Stateless_ops.sampler ~keep_one_in:3
  | _ -> Stateless_ops.flat_split ~parts:2

let test_random_chain_equivalence =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:30
       ~name:"compiled closed loop = interpreted walk on random chains"
       (QCheck.make
          QCheck.Gen.(
            pair (int_range 0 1000)
              (list_size (int_range 2 5) (int_bound 4))))
       (fun (seed, picks) ->
         let k = List.length picks in
         let ops =
           Array.init (k + 1) (fun v ->
               if v = 0 then Operator.make ~service_time:1e-7 "src"
               else Operator.make ~service_time:1e-7 (Printf.sprintf "m%d" v))
         in
         let edges = List.init k (fun v -> (v, v + 1, 1.0)) in
         let t = Topology.create_exn ops edges in
         let registry =
           registry_of
             (List.mapi (fun i pick -> (i + 1, behavior_of_pick pick)) picks)
         in
         let members = List.init k (fun i -> i + 1) in
         let run fusion =
           Executor.run ~fused:[ members ] ~fusion ~seed
             ~source:
               (Executor.source_of_fn ~count:200 (fun i ->
                    tuple [| float_of_int i /. 200.0 |]))
             ~registry t
         in
         let compiled = run `Compiled in
         let interpreted = run `Interpreted in
         compiled.Executor.consumed = interpreted.Executor.consumed
         && compiled.Executor.produced = interpreted.Executor.produced))

(* ------------------------------------------------------------------ *)
(* Planner eligibility *)

let evented_passthrough =
  Behavior.make_evented ~name:"ev_pass" (fun () ->
      {
        Behavior.efn = (fun t -> [ t ]);
        on_watermark = (fun _ -> []);
        on_late = (fun _ -> []);
        eexport = (fun () -> []);
        eimport = (fun _ -> ());
      })

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i =
    i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1))
  in
  nl = 0 || go 0

let test_plan_rejects_evented () =
  let t =
    Topology.create_exn
      [|
        Operator.make ~service_time:1e-7 "src";
        Operator.make ~service_time:1e-7 "a";
        Operator.make ~service_time:1e-7 "b";
      |]
      [ (0, 1, 1.0); (1, 2, 1.0) ]
  in
  let registry =
    registry_of [ (1, Stateless_ops.identity); (2, evented_passthrough) ]
  in
  match Fused_compile.plan t ~members:[ 1; 2 ] ~registry with
  | Ok _ -> Alcotest.fail "expected the planner to decline an evented member"
  | Error msg ->
      Alcotest.(check bool)
        (Printf.sprintf "message names the evented member: %s" msg)
        true
        (contains ~needle:"evented" msg)

let test_plan_rejects_illegal_group () =
  (* Two entry points: front_end_of's legality error must surface. *)
  let t = Fixtures.diamond ~pa:0.5 ~t_src:0.1 ~t_a:0.1 ~t_b:0.1 ~t_sink:0.1 in
  let registry = identity_registry [ 1; 2; 3 ] in
  match Fused_compile.plan t ~members:[ 1; 2 ] ~registry with
  | Ok _ -> Alcotest.fail "expected the planner to decline two entry points"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Fallback paths: runs that cannot use the compiled tier must still
   report the same counts. *)

let test_telemetry_run_falls_back () =
  let seed = 13 and tuples = 1500 in
  let with_telemetry =
    Executor.run ~fused:[ fig11_group ] ~seed
      ~instrument:
        {
          Executor.default_instrument with
          telemetry = true;
          telemetry_sample = 1;
        }
      ~source:
        (Executor.source_of_fn ~count:tuples (fun i ->
             tuple [| float_of_int i |]))
      ~registry:(identity_registry [ 1; 2; 3; 4; 5 ])
      (fig11_fast ())
  in
  let interpreted = run_fig11 ~fusion:`Interpreted ~seed ~tuples in
  Alcotest.(check bool) "telemetry present" true
    (Option.is_some with_telemetry.Executor.telemetry);
  Alcotest.(check (array int)) "consumed unchanged by the fallback"
    interpreted.Executor.consumed with_telemetry.Executor.consumed;
  Alcotest.(check (array int)) "produced unchanged by the fallback"
    interpreted.Executor.produced with_telemetry.Executor.produced

let test_mixed_groups_per_group_fallback () =
  (* Two fused groups in one run: [1;2] stages compiled, [3;4] contains an
     evented member so the planner declines it and only that group walks
     interpreted. Counts must equal the all-interpreted run. *)
  let build () =
    Topology.create_exn
      (Array.init 5 (fun v ->
           Operator.make ~service_time:1e-7
             (if v = 0 then "src" else Printf.sprintf "m%d" v)))
      [ (0, 1, 1.0); (1, 2, 1.0); (2, 3, 1.0); (3, 4, 1.0) ]
  in
  let registry =
    registry_of
      [
        (1, Stateless_ops.identity);
        (2, Stateless_ops.scale ~factor:3.0);
        (3, Stateless_ops.identity);
        (4, evented_passthrough);
      ]
  in
  let run fusion =
    Executor.run
      ~fused:[ [ 1; 2 ]; [ 3; 4 ] ]
      ~fusion ~seed:17
      ~source:
        (Executor.source_of_fn ~count:800 (fun i ->
             tuple [| float_of_int i |]))
      ~registry (build ())
  in
  let mixed = run `Compiled in
  let interpreted = run `Interpreted in
  Alcotest.(check (array int)) "consumed, mixed = interpreted"
    interpreted.Executor.consumed mixed.Executor.consumed;
  Alcotest.(check (array int)) "produced, mixed = interpreted"
    interpreted.Executor.produced mixed.Executor.produced

(* ------------------------------------------------------------------ *)
(* Generated closed-loop fixture: the checked-in examples/generated_fig11
   program (emitted with --fusion closed-loop) must reproduce the exact
   per-vertex counts the DES replay predicts for its seed and stream. *)

let fixture_exe = "../examples/generated_fig11/fig11_pipeline.exe"

let test_generated_fixture_counts () =
  let ic = Unix.open_process_in fixture_exe in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  let status = Unix.close_process_in ic in
  Alcotest.(check bool) "fixture exited cleanly" true
    (status = Unix.WEXITED 0);
  let consumed = Array.make 6 (-1) and produced = Array.make 6 (-1) in
  List.iter
    (fun line ->
      try
        Scanf.sscanf line "vertex %d: consumed %d, produced %d"
          (fun v c p ->
            consumed.(v) <- c;
            produced.(v) <- p)
      with Scanf.Scan_failure _ | End_of_file | Failure _ -> ())
    !lines;
  (* The fixture was generated from fig11_table1.xml with seed 42 over
     4000 tuples; Fixtures.table1 is the same topology. *)
  let replay_consumed, replay_produced =
    Ss_sim.Engine.replay ~fused:[ fig11_group ] ~seed:42 ~tuples:4000
      (Fixtures.table1 ())
  in
  Alcotest.(check (array int)) "fixture consumed = replay" replay_consumed
    consumed;
  Alcotest.(check (array int)) "fixture produced = replay" replay_produced
    produced

(* ------------------------------------------------------------------ *)
(* Compiled cost model (Algorithm 3 under the closed-loop tier) *)

let test_compiled_cost_below_interpreted () =
  let t = Fixtures.table1 () in
  let interpreted =
    Ss_core.Fusion.service_time t fig11_group |> Result.get_ok
  in
  let compiled =
    Ss_core.Fusion.service_time ~execution:`Compiled t fig11_group
    |> Result.get_ok
  in
  Alcotest.(check bool)
    (Printf.sprintf "compiled %.9f < interpreted %.9f" compiled interpreted)
    true (compiled < interpreted);
  (* The discount is floored: an absurd overhead can at most halve each
     member, so the compiled estimate is exactly half the interpreted one. *)
  let floored =
    Ss_core.Fusion.service_time ~execution:`Compiled ~dispatch_overhead:1.0 t
      fig11_group
    |> Result.get_ok
  in
  Alcotest.(check (float 1e-12)) "floor at half" (0.5 *. interpreted) floored

let test_fig11_decision_no_worse_compiled () =
  (* Table 1: fusion is feasible interpreted; it must stay feasible — and
     price strictly lower — under the compiled tier. *)
  let t = Fixtures.table1 () in
  let outcome execution =
    Ss_core.Fusion.apply ~execution t fig11_group |> Result.get_ok
  in
  let interp = outcome `Interpreted and comp = outcome `Compiled in
  Alcotest.(check bool) "interpreted feasible" false
    interp.Ss_core.Fusion.creates_bottleneck;
  Alcotest.(check bool) "compiled stays feasible" false
    comp.Ss_core.Fusion.creates_bottleneck;
  Alcotest.(check bool) "compiled prices lower" true
    (comp.Ss_core.Fusion.fused_service_time
    < interp.Ss_core.Fusion.fused_service_time);
  Alcotest.(check bool) "throughput no worse" true
    (comp.Ss_core.Fusion.throughput_ratio
     >= interp.Ss_core.Fusion.throughput_ratio -. 1e-9)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "ss_fusion"
    [
      ( "differential",
        [
          quick "fig11: compiled = interpreted = replay"
            test_fig11_compiled_interpreted_replay;
          quick "supplied chain = staged chain"
            test_supplied_chain_matches_staged;
          test_random_chain_equivalence;
        ] );
      ( "planner",
        [
          quick "declines evented members" test_plan_rejects_evented;
          quick "declines illegal groups" test_plan_rejects_illegal_group;
        ] );
      ( "fallback",
        [
          quick "telemetry run keeps counts" test_telemetry_run_falls_back;
          quick "per-group fallback in mixed runs"
            test_mixed_groups_per_group_fallback;
        ] );
      ( "fixture",
        [ quick "generated closed loop matches replay" test_generated_fixture_counts ] );
      ( "cost model",
        [
          quick "compiled prices below interpreted"
            test_compiled_cost_below_interpreted;
          quick "fig11 decision unchanged-or-better"
            test_fig11_decision_no_worse_compiled;
        ] );
    ]
