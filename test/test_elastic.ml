(* Tests for the elasticity baseline: convergence, downtime accounting, and
   the comparison against SpinStreams' static plan. *)

open Ss_topology
open Ss_elastic

let bottlenecked () = Fixtures.pipeline [ 0.5; 2.0; 0.4 ]
(* Source 2000/s; middle stage sustains 500/s per replica: needs 4. *)

let run_fast ?policy ?max_epochs t =
  Controller.run ?policy ?max_epochs ~epoch_length:5.0
    ~reconfiguration_downtime:1.0 t

let test_converges_to_needed_replicas () =
  let r = run_fast (bottlenecked ()) in
  (match r.Controller.converged_at with
  | None -> Alcotest.fail "did not converge"
  | Some i -> Alcotest.(check bool) "converges within 8 epochs" true (i <= 8));
  let final_replicas = (Topology.operator r.Controller.final 1).Operator.replicas in
  Alcotest.(check bool)
    (Printf.sprintf "enough replicas (%d)" final_replicas)
    true (final_replicas >= 4);
  match List.rev r.Controller.epochs with
  | last :: _ ->
      Alcotest.(check bool) "near-ideal final throughput" true
        (last.Controller.throughput > 1900.0)
  | [] -> Alcotest.fail "no epochs"

let test_balanced_topology_stays_put () =
  let t = Fixtures.pipeline [ 1.0; 0.8; 0.9 ] in
  (* Utilizations 0.8/0.9 sit inside the 0.3-0.9 dead band. *)
  let r = run_fast ~max_epochs:4 t in
  Alcotest.(check (option int)) "no change from the start" (Some 0)
    r.Controller.converged_at;
  List.iter
    (fun (e : Controller.epoch) ->
      Alcotest.(check int) "no resizes" 0 (List.length e.Controller.changes))
    r.Controller.epochs

let test_downtime_charged_after_changes () =
  let r = run_fast (bottlenecked ()) in
  let rec check_pairs : Controller.epoch list -> unit = function
    | a :: (b :: _ as rest) ->
        if a.Controller.changes <> [] then
          Alcotest.(check bool) "epoch after a resize loses throughput" true
            (b.Controller.effective_throughput < b.Controller.throughput -. 1e-9);
        check_pairs rest
    | [ last ] ->
        if last.Controller.changes = [] then
          Alcotest.(check (float 1e-6)) "stable epoch is not charged"
            last.Controller.throughput last.Controller.effective_throughput
    | [] -> ()
  in
  check_pairs r.Controller.epochs

let test_stateful_never_resized () =
  let ops =
    [|
      Operator.make ~service_time:0.5e-3 "src";
      Operator.make ~kind:Operator.Stateful ~service_time:2e-3 "state";
    |]
  in
  let t = Topology.create_exn ops [ (0, 1, 1.0) ] in
  let r = run_fast ~max_epochs:4 t in
  List.iter
    (fun (e : Controller.epoch) ->
      Alcotest.(check int) "stateful untouched" 0 (List.length e.Controller.changes))
    r.Controller.epochs;
  Alcotest.(check int) "still one replica" 1
    (Topology.operator r.Controller.final 1).Operator.replicas

let test_scale_down_from_overprovisioned () =
  let ops =
    [|
      Operator.make ~service_time:1e-3 "src";
      Operator.make ~service_time:0.5e-3 ~replicas:8 "worker";
    |]
  in
  let t = Topology.create_exn ops [ (0, 1, 1.0) ] in
  let r = run_fast t in
  Alcotest.(check bool) "replicas released" true
    ((Topology.operator r.Controller.final 1).Operator.replicas < 8)

let test_static_beats_elastic_on_stable_workload () =
  (* The paper's core claim, quantified: over the same horizon, the
     statically optimized configuration processes more items than the
     elastic run that has to discover it (convergence + downtime). *)
  let t = bottlenecked () in
  let elastic = run_fast ~max_epochs:12 t in
  let static_plan = Ss_core.Fission.optimize t in
  let static_throughput =
    let config =
      { Ss_sim.Engine.default_config with Ss_sim.Engine.warmup = 1.0; measure = 5.0 }
    in
    (Ss_sim.Engine.run ~config static_plan.Ss_core.Fission.topology)
      .Ss_sim.Engine.throughput
  in
  let static_items = static_throughput *. elastic.Controller.horizon in
  Alcotest.(check bool)
    (Printf.sprintf "static %.0f items > elastic %.0f items" static_items
       elastic.Controller.items_processed)
    true
    (static_items > elastic.Controller.items_processed);
  (* But elasticity does converge to a comparable configuration. *)
  match List.rev elastic.Controller.epochs with
  | last :: _ ->
      Alcotest.(check bool) "elastic eventually matches" true
        (last.Controller.throughput > 0.95 *. static_throughput)
  | [] -> Alcotest.fail "no epochs"

let test_invalid_epoch_length () =
  Alcotest.check_raises "epoch must outlast downtime"
    (Invalid_argument
       "Controller.run: epoch must outlast the reconfiguration downtime")
    (fun () ->
      ignore
        (Controller.run ~epoch_length:1.0 ~reconfiguration_downtime:2.0
           (bottlenecked ())))

let test_pp_renders () =
  let r = run_fast ~max_epochs:3 (bottlenecked ()) in
  let s = Format.asprintf "%a" Controller.pp r in
  Alcotest.(check bool) "mentions epochs" true (String.length s > 40)

(* ------------------------------------------------------------------ *)
(* Live loop: measured-utilization decisions and reconfiguration of a
   running executor deployment. *)

module Live = Ss_runtime.Executor.Live

let test_decide_measured () =
  let policy = Controller.default_policy in
  let elastic = [| false; true; true; true |] in
  let degrees = [| 1; 1; 2; 1 |] in
  (* hot vertex 1 grows; vertex 2 idles back to 1; NaN (vertex 3) reads as
     idle but degree 1 cannot shrink; the source (vertex 0) is masked. *)
  let utilization = [| 5.0; 0.96; 0.1; Float.nan |] in
  let changes = Controller.decide_measured policy ~elastic ~degrees ~utilization in
  Alcotest.(check int) "two changes" 2 (List.length changes);
  let c1 = List.find (fun c -> c.Controller.vertex = 1) changes in
  Alcotest.(check bool) "hot grows" true (c1.Controller.after >= 2);
  let c2 = List.find (fun c -> c.Controller.vertex = 2) changes in
  Alcotest.(check int) "idle shrinks" 1 c2.Controller.after;
  Alcotest.(check bool) "source and NaN untouched" true
    (not (List.exists (fun c -> c.Controller.vertex = 0 || c.Controller.vertex = 3) changes))

(* The end-to-end acceptance scenario: from all-1 degrees on a stable
   offered load, the controller grows the hot operator of the RUNNING
   topology (no restart), charges measured downtime, and converges to a
   throughput comparable to deploying the static SpinStreams plan from
   t=0. Both arms use the same busy-wait stubs, the same throttled load
   and the same measurement (source emissions per wall-clock second). *)
let test_live_closed_loop () =
  let rate = 200.0 in
  let ops =
    [|
      Operator.source ~rate "src";
      Operator.make ~service_time:0.0003 "pre";
      Operator.make ~service_time:0.006 "hot";
      Operator.make ~service_time:0.0001 "snk";
    |]
  in
  let topo =
    Topology.create_exn ops [ (0, 1, 1.0); (1, 2, 1.0); (2, 3, 1.0) ]
  in
  let instrument =
    {
      Ss_runtime.Executor.default_instrument with
      telemetry = true;
      telemetry_sample = 2;
    }
  in
  let measure live warmup window =
    Unix.sleepf warmup;
    let src = Topology.source (Live.topology live) in
    let c0 = (Live.produced live).(src) in
    let t0 = Unix.gettimeofday () in
    Unix.sleepf window;
    let c1 = (Live.produced live).(src) in
    float_of_int (c1 - c0) /. (Unix.gettimeofday () -. t0)
  in
  (* static arm: the Algorithm 2 plan deployed from the start *)
  let plan = Ss_core.Fission.optimize topo in
  let static_live =
    Ss_codegen.Plan.live ~workers:3 ~reserve:6 ~instrument
      plan.Ss_core.Fission.topology
  in
  let static_rate = measure static_live 0.4 1.2 in
  ignore (Live.stop static_live);
  (* elastic arm: all-1 degrees, controller closes the loop *)
  let live = Ss_codegen.Plan.live ~workers:3 ~reserve:6 ~instrument topo in
  let r =
    Controller.run_live ~epoch_length:0.4 ~max_epochs:6 ~settle:2 live
  in
  Alcotest.(check bool) "deployment finished" true
    (r.Controller.metrics.Ss_runtime.Executor.outcome
    = Ss_runtime.Supervision.Finished);
  Alcotest.(check bool)
    (Printf.sprintf "hot operator grew (degree %d)"
       r.Controller.final_degrees.(2))
    true
    (r.Controller.final_degrees.(2) >= 2);
  Alcotest.(check bool) "measured downtime charged" true
    (r.Controller.total_downtime > 0.0);
  (match
     List.rev (List.filter (fun e -> e.Controller.downtime > 0.0) r.Controller.epochs)
   with
  | [] -> Alcotest.fail "no epoch recorded its reconfiguration downtime"
  | _ -> ());
  let final =
    match List.rev r.Controller.epochs with
    | e :: _ -> e.Controller.rate
    | [] -> Alcotest.fail "no epochs"
  in
  Alcotest.(check bool)
    (Printf.sprintf "final %.1f t/s within 15%% of static %.1f t/s" final
       static_rate)
    true
    (final >= 0.85 *. static_rate)

(* Lossless drain-and-swap: resizing a migratable partitioned-stateful
   operator (count_by_key) mid-run repartitions its keyed state, so the
   final per-key count equals that key's total occurrences, and no tuple
   is lost or duplicated anywhere in the pipeline. *)
let test_live_state_handoff () =
  let nkeys = 8 and n = 20000 in
  let keys = Ss_prelude.Discrete.uniform nkeys in
  let ops =
    [|
      Operator.source ~rate:10000.0 "src";
      Operator.with_replicas (Operator.make ~service_time:1e-4 "map") 2;
      Operator.with_replicas
        (Operator.make
           ~kind:(Operator.Partitioned_stateful keys)
           ~service_time:1e-4 "count")
        2;
      Operator.make ~service_time:1e-4 "snk";
    |]
  in
  let topo =
    Topology.create_exn ops [ (0, 1, 1.0); (1, 2, 1.0); (2, 3, 1.0) ]
  in
  let seen = Hashtbl.create 16 in
  let seen_m = Mutex.create () in
  let registry v =
    match v with
    | 1 -> Ss_operators.Behavior.make ~name:"map" (fun () -> fun t -> [ t ])
    | 2 -> Ss_operators.Join_ops.count_by_key ()
    | 3 ->
        Ss_operators.Behavior.make ~name:"snk" (fun () ->
            fun (t : Ss_operators.Tuple.t) ->
              Mutex.lock seen_m;
              let k = t.Ss_operators.Tuple.key in
              let c = int_of_float (Ss_operators.Tuple.value t 0) in
              let prev = Option.value ~default:0 (Hashtbl.find_opt seen k) in
              Hashtbl.replace seen k (max prev c);
              Mutex.unlock seen_m;
              [])
    | _ -> assert false
  in
  let emitted = Atomic.make 0 in
  let source () =
    let i = Atomic.fetch_and_add emitted 1 in
    if i >= n then None
    else begin
      (* pace lightly so the resizes land mid-stream *)
      if i mod 1000 = 0 then Unix.sleepf 0.002;
      Some
        (Ss_operators.Tuple.make ~ts:0.0 ~key:(i mod nkeys) ~tag:0
           [| float_of_int i |])
    end
  in
  let live = Live.start ~workers:4 ~reserve:2 ~source ~registry topo in
  Alcotest.(check bool) "replicated vertices are elastic" true
    ((Live.elastic live).(1) && (Live.elastic live).(2));
  (* grow the stateful operator and the stateless one, then shrink *)
  Alcotest.(check bool) "resize accepted" true (Live.resize live ~vertex:2 3);
  ignore (Live.resize live ~vertex:1 4);
  let deadline = Unix.gettimeofday () +. 10.0 in
  while Live.generation live < 2 && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.001
  done;
  ignore (Live.resize live ~vertex:1 1);
  while (Live.produced live).(0) < n && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.001
  done;
  let m = Live.stop live in
  Alcotest.(check bool) "finished" true
    (m.Ss_runtime.Executor.outcome = Ss_runtime.Supervision.Finished);
  Alcotest.(check bool) "reconfigured at least twice" true
    (Live.generation live >= 2);
  Alcotest.(check bool) "swap downtime measured" true
    ((Live.downtime live).(2) > 0.0);
  (* conservation through every swap *)
  Array.iteri
    (fun v c ->
      if v > 0 then
        Alcotest.(check int) (Printf.sprintf "vertex %d consumed all" v) n c)
    m.Ss_runtime.Executor.consumed;
  (* keyed state survived the repartitions *)
  for k = 0 to nkeys - 1 do
    let occurrences = n / nkeys in
    Alcotest.(check int)
      (Printf.sprintf "final count for key %d" k)
      occurrences
      (Option.value ~default:0 (Hashtbl.find_opt seen k))
  done

(* The same lossless-swap contract for a whole compiled fused group: a
   linear group hosting a keyed counter deploys as an elastic fission unit
   of the staged closed loop; resizing it mid-run exports every worker's
   keyed state through the staged instance, repartitions it, and no tuple
   is lost or duplicated. *)
let test_live_fused_group_resize () =
  let nkeys = 8 and n = 20000 in
  let keys = Ss_prelude.Discrete.uniform nkeys in
  let ops =
    [|
      Operator.source ~rate:10000.0 "src";
      Operator.with_replicas
        (Operator.make
           ~kind:(Operator.Partitioned_stateful keys)
           ~service_time:1e-4 "count")
        2;
      Operator.make ~service_time:1e-4 "post";
      Operator.make ~service_time:1e-4 "snk";
    |]
  in
  let topo =
    Topology.create_exn ops [ (0, 1, 1.0); (1, 2, 1.0); (2, 3, 1.0) ]
  in
  let seen = Hashtbl.create 16 in
  let seen_m = Mutex.create () in
  let registry v =
    match v with
    | 1 -> Ss_operators.Join_ops.count_by_key ()
    | 2 -> Ss_operators.Stateless_ops.identity
    | 3 ->
        Ss_operators.Behavior.make ~name:"snk" (fun () ->
            fun (t : Ss_operators.Tuple.t) ->
              Mutex.lock seen_m;
              let k = t.Ss_operators.Tuple.key in
              let c = int_of_float (Ss_operators.Tuple.value t 0) in
              let prev = Option.value ~default:0 (Hashtbl.find_opt seen k) in
              Hashtbl.replace seen k (max prev c);
              Mutex.unlock seen_m;
              [])
    | _ -> assert false
  in
  let emitted = Atomic.make 0 in
  let source () =
    let i = Atomic.fetch_and_add emitted 1 in
    if i >= n then None
    else begin
      if i mod 1000 = 0 then Unix.sleepf 0.002;
      Some
        (Ss_operators.Tuple.make ~ts:0.0 ~key:(i mod nkeys) ~tag:0
           [| float_of_int i |])
    end
  in
  let live =
    Live.start ~workers:4
      ~fused:[ [ 1; 2 ] ]
      ~fusion:`Compiled ~source ~registry topo
  in
  Alcotest.(check bool) "fused group is elastic at its front" true
    (Live.elastic live).(1);
  Alcotest.(check bool) "resize accepted" true (Live.resize live ~vertex:1 3);
  let deadline = Unix.gettimeofday () +. 10.0 in
  while Live.generation live < 1 && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.001
  done;
  ignore (Live.resize live ~vertex:1 1);
  while (Live.produced live).(0) < n && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.001
  done;
  let m = Live.stop live in
  Alcotest.(check bool) "finished" true
    (m.Ss_runtime.Executor.outcome = Ss_runtime.Supervision.Finished);
  Alcotest.(check bool) "reconfigured at least twice" true
    (Live.generation live >= 2);
  Alcotest.(check bool) "swap downtime measured" true
    ((Live.downtime live).(1) > 0.0);
  (* conservation through every swap, for both fused members *)
  Array.iteri
    (fun v c ->
      if v > 0 then
        Alcotest.(check int) (Printf.sprintf "vertex %d consumed all" v) n c)
    m.Ss_runtime.Executor.consumed;
  (* the keyed counter's state crossed every generation intact *)
  for k = 0 to nkeys - 1 do
    Alcotest.(check int)
      (Printf.sprintf "final count for key %d" k)
      (n / nkeys)
      (Option.value ~default:0 (Hashtbl.find_opt seen k))
  done

let test_live_resize_validation () =
  let ops =
    [|
      Operator.make ~service_time:1e-4 "src";
      Operator.make ~kind:Operator.Stateful ~service_time:1e-4 "state";
    |]
  in
  let topo = Topology.create_exn ops [ (0, 1, 1.0) ] in
  let emitted = Atomic.make 0 in
  let source () =
    if Atomic.fetch_and_add emitted 1 >= 100 then None
    else Some (Ss_operators.Tuple.make ~ts:0.0 ~key:0 ~tag:0 [| 0.0 |])
  in
  let registry _ =
    Ss_operators.Behavior.make ~name:"id" (fun () -> fun t -> [ t ])
  in
  let live = Live.start ~workers:2 ~source ~registry topo in
  Alcotest.(check bool) "stateful vertex is not elastic" false
    (Live.elastic live).(1);
  Alcotest.(check bool) "resize refused" false (Live.resize live ~vertex:1 2);
  Alcotest.check_raises "degree 0 rejected"
    (Invalid_argument "Executor.Live.resize: degree must be >= 1") (fun () ->
      ignore (Live.resize live ~vertex:1 0));
  Alcotest.check_raises "vertex out of range"
    (Invalid_argument "Executor.Live.resize: vertex out of range") (fun () ->
      ignore (Live.resize live ~vertex:9 2));
  ignore (Live.stop live)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "ss_elastic"
    [
      ( "controller",
        [
          quick "converges on a bottleneck" test_converges_to_needed_replicas;
          quick "balanced topology untouched" test_balanced_topology_stays_put;
          quick "downtime accounting" test_downtime_charged_after_changes;
          quick "stateful operators skipped" test_stateful_never_resized;
          quick "scale down when overprovisioned" test_scale_down_from_overprovisioned;
          quick "static beats elastic on stable load"
            test_static_beats_elastic_on_stable_workload;
          quick "invalid epoch length" test_invalid_epoch_length;
          quick "pretty printing" test_pp_renders;
        ] );
      ( "live",
        [
          quick "measured decisions" test_decide_measured;
          quick "closed loop vs static plan" test_live_closed_loop;
          quick "lossless state handoff" test_live_state_handoff;
          quick "lossless fused-group resize" test_live_fused_group_resize;
          quick "resize validation" test_live_resize_validation;
        ] );
    ]
