(* Tests for the executable operator catalog: window semantics, aggregation
   correctness, spatial queries, joins and the stateless transformations. *)

open Ss_operators

let tuple ?(ts = 0.0) ?(key = 0) ?(tag = 0) values =
  Tuple.make ~ts ~key ~tag values

let feed fn inputs = List.concat_map fn inputs

let float_list = Alcotest.(list (float 1e-9))

let outputs_of behavior inputs =
  let fn = Behavior.instantiate behavior in
  feed fn inputs

let first_values outs = List.map (fun t -> Tuple.value t 0) outs

(* ------------------------------------------------------------------ *)
(* Window *)

let test_window_fires_when_full () =
  let w = Window.create ~length:3 ~slide:2 in
  Alcotest.(check (option (list int))) "not full" None (Window.push w 1);
  Alcotest.(check (option (list int))) "not full" None (Window.push w 2);
  Alcotest.(check (option (list int))) "fires at 3" (Some [ 1; 2; 3 ])
    (Window.push w 3);
  Alcotest.(check (option (list int))) "no fire between slides" None
    (Window.push w 4);
  Alcotest.(check (option (list int))) "fires after slide" (Some [ 3; 4; 5 ])
    (Window.push w 5)

let test_window_slide_one () =
  let w = Window.create ~length:2 ~slide:1 in
  ignore (Window.push w 10);
  Alcotest.(check (option (list int))) "fire" (Some [ 10; 20 ]) (Window.push w 20);
  Alcotest.(check (option (list int))) "fire each push" (Some [ 20; 30 ])
    (Window.push w 30)

let test_window_eviction () =
  let w = Window.create ~length:2 ~slide:5 in
  List.iter (fun x -> ignore (Window.push w x)) [ 1; 2; 3; 4 ];
  Alcotest.(check (list int)) "only the last 2 retained" [ 3; 4 ]
    (Window.contents w);
  Alcotest.(check int) "pushed total" 4 (Window.pushed w)

let test_window_reset () =
  let w = Window.create ~length:2 ~slide:1 in
  ignore (Window.push w 1);
  ignore (Window.push w 2);
  Window.reset w;
  Alcotest.(check int) "empty" 0 (Window.size w);
  Alcotest.(check (option (list int))) "refills from scratch" None
    (Window.push w 3)

let test_window_invalid () =
  Alcotest.check_raises "zero length"
    (Invalid_argument "Window.create: length must be >= 1") (fun () ->
      ignore (Window.create ~length:0 ~slide:1));
  Alcotest.check_raises "zero slide"
    (Invalid_argument "Window.create: slide must be >= 1") (fun () ->
      ignore (Window.create ~length:1 ~slide:0))

(* ------------------------------------------------------------------ *)
(* Stateless operators *)

let test_identity () =
  let t = tuple [| 1.0; 2.0 |] in
  match outputs_of Stateless_ops.identity [ t ] with
  | [ out ] -> Alcotest.(check bool) "unchanged" true (Tuple.equal t out)
  | _ -> Alcotest.fail "expected one output"

let test_scale_offset () =
  let t = tuple [| 1.0; -2.0 |] in
  (match outputs_of (Stateless_ops.scale ~factor:3.0) [ t ] with
  | [ out ] ->
      Alcotest.check float_list "scaled" [ 3.0; -6.0 ]
        (Array.to_list out.Tuple.values)
  | _ -> Alcotest.fail "one output");
  match outputs_of (Stateless_ops.offset ~delta:1.5) [ t ] with
  | [ out ] ->
      Alcotest.check float_list "shifted" [ 2.5; -0.5 ]
        (Array.to_list out.Tuple.values)
  | _ -> Alcotest.fail "one output"

let test_threshold_filter () =
  let f = Stateless_ops.threshold_filter ~index:0 ~threshold:0.5 in
  let outs =
    outputs_of f [ tuple [| 0.4 |]; tuple [| 0.5 |]; tuple [| 0.9 |] ]
  in
  Alcotest.check float_list "kept" [ 0.5; 0.9 ] (first_values outs)

let test_sampler () =
  let outs =
    outputs_of
      (Stateless_ops.sampler ~keep_one_in:3)
      (List.init 9 (fun i -> tuple [| float_of_int i |]))
  in
  Alcotest.check float_list "every third" [ 2.0; 5.0; 8.0 ] (first_values outs)

let test_flat_split () =
  let t = tuple [| 1.0; 2.0; 3.0; 4.0 |] in
  match outputs_of (Stateless_ops.flat_split ~parts:2) [ t ] with
  | [ a; b ] ->
      Alcotest.check float_list "even indices" [ 1.0; 3.0 ]
        (Array.to_list a.Tuple.values);
      Alcotest.check float_list "odd indices" [ 2.0; 4.0 ]
        (Array.to_list b.Tuple.values)
  | outs -> Alcotest.failf "expected 2 outputs, got %d" (List.length outs)

let test_project () =
  match outputs_of (Stateless_ops.project ~keep:2) [ tuple [| 1.; 2.; 3. |] ] with
  | [ out ] -> Alcotest.(check int) "arity" 2 (Tuple.arity out)
  | _ -> Alcotest.fail "one output"

let test_rekey_deterministic_and_bounded () =
  let f = Stateless_ops.rekey ~buckets:8 in
  let t = tuple ~key:99 [| 1.0; 2.0 |] in
  match (outputs_of f [ t ], outputs_of f [ t ]) with
  | [ a ], [ b ] ->
      Alcotest.(check int) "deterministic" a.Tuple.key b.Tuple.key;
      Alcotest.(check bool) "within buckets" true (a.Tuple.key >= 0 && a.Tuple.key < 8)
  | _ -> Alcotest.fail "one output each"

let test_enrich () =
  let f = Stateless_ops.enrich ~table:(fun k -> float_of_int (k * 10)) in
  match outputs_of f [ tuple ~key:7 [| 1.0 |] ] with
  | [ out ] ->
      Alcotest.check float_list "appended" [ 1.0; 70.0 ]
        (Array.to_list out.Tuple.values)
  | _ -> Alcotest.fail "one output"

let test_compute_changes_value () =
  match outputs_of (Stateless_ops.compute ~iterations:10) [ tuple [| 1.0 |] ] with
  | [ out ] ->
      Alcotest.(check bool) "value folded" true (Tuple.value out 0 <> 1.0)
  | _ -> Alcotest.fail "one output"

(* ------------------------------------------------------------------ *)
(* Windowed aggregations *)

let spec length slide =
  { Window_ops.default_spec with Window_ops.length; slide }

let series n = List.init n (fun i -> tuple [| float_of_int (i + 1) |])

let test_windowed_sum () =
  let outs = outputs_of (Window_ops.sum ~spec:(spec 3 2) ()) (series 7) in
  (* Fires at pushes 3, 5, 7 over values (1..7): 1+2+3, 3+4+5, 5+6+7. *)
  Alcotest.check float_list "sums" [ 6.0; 12.0; 18.0 ] (first_values outs)

let test_windowed_max_min () =
  let outs = outputs_of (Window_ops.max_agg ~spec:(spec 3 3) ()) (series 6) in
  Alcotest.check float_list "max" [ 3.0; 6.0 ] (first_values outs);
  let outs = outputs_of (Window_ops.min_agg ~spec:(spec 3 3) ()) (series 6) in
  Alcotest.check float_list "min" [ 1.0; 4.0 ] (first_values outs)

let test_windowed_mean () =
  let outs = outputs_of (Window_ops.mean ~spec:(spec 4 4) ()) (series 4) in
  Alcotest.check float_list "mean of 1..4" [ 2.5 ] (first_values outs)

let test_weighted_moving_average () =
  (* Window [1;2;3], weights 1,2,3: (1 + 4 + 9) / 6. *)
  let outs =
    outputs_of (Window_ops.weighted_moving_average ~spec:(spec 3 10) ()) (series 3)
  in
  Alcotest.check float_list "wma" [ 14.0 /. 6.0 ] (first_values outs)

let test_quantile_exact () =
  let inputs = List.map (fun v -> tuple [| v |]) [ 5.; 1.; 4.; 2.; 3. ] in
  let outs = outputs_of (Window_ops.quantile ~spec:(spec 5 5) ~q:0.5 ()) inputs in
  Alcotest.check float_list "median" [ 3.0 ] (first_values outs);
  let outs = outputs_of (Window_ops.quantile ~spec:(spec 5 5) ~q:1.0 ()) inputs in
  Alcotest.check float_list "max quantile" [ 5.0 ] (first_values outs)

let test_per_key_windows_are_independent () =
  let b = Window_ops.sum ~spec:{ (spec 2 2) with Window_ops.per_key = true } () in
  let fn = Behavior.instantiate b in
  let push key v = feed fn [ tuple ~key [| v |] ] in
  Alcotest.check float_list "k0 filling" [] (first_values (push 0 1.0));
  Alcotest.check float_list "k1 filling" [] (first_values (push 1 10.0));
  Alcotest.check float_list "k0 fires alone" [ 3.0 ] (first_values (push 0 2.0));
  Alcotest.check float_list "k1 fires alone" [ 30.0 ] (first_values (push 1 20.0))

let test_fresh_instances_do_not_share_state () =
  let b = Window_ops.sum ~spec:(spec 2 2) () in
  let f1 = Behavior.instantiate b and f2 = Behavior.instantiate b in
  ignore (f1 (tuple [| 1.0 |]));
  (* f2 must still need two pushes. *)
  Alcotest.check float_list "f2 unaffected" []
    (first_values (f2 (tuple [| 5.0 |])));
  Alcotest.check float_list "f2 fires on its own schedule" [ 12.0 ]
    (first_values (f2 (tuple [| 7.0 |])))

let test_declared_selectivities () =
  let b = Window_ops.sum ~spec:(spec 100 10) () in
  Alcotest.(check (float 1e-9)) "input selectivity = slide" 10.0
    b.Behavior.input_selectivity;
  Alcotest.(check (float 1e-9)) "sampler selectivity" 0.25
    (Stateless_ops.sampler ~keep_one_in:4).Behavior.output_selectivity;
  Alcotest.(check (float 1e-9)) "split selectivity" 2.0
    (Stateless_ops.flat_split ~parts:2).Behavior.output_selectivity

(* ------------------------------------------------------------------ *)
(* Spatial operators *)

let test_skyline_small () =
  (* Points: (1,5) (2,2) (5,1) (3,3) — (3,3) is dominated by (2,2). *)
  let pts = [ (1., 5.); (2., 2.); (5., 1.); (3., 3.) ] in
  let inputs = List.map (fun (x, y) -> tuple [| x; y |]) pts in
  let outs = outputs_of (Spatial_ops.skyline ~length:4 ~slide:4 ()) inputs in
  let result = List.map (fun t -> (Tuple.value t 0, Tuple.value t 1)) outs in
  Alcotest.(check (list (pair (float 0.) (float 0.)))) "skyline"
    [ (1., 5.); (2., 2.); (5., 1.) ]
    result

let test_skyline_duplicates_survive () =
  (* Equal points do not dominate each other (strictness required). *)
  let inputs = List.map (fun (x, y) -> tuple [| x; y |]) [ (1., 1.); (1., 1.) ] in
  let outs = outputs_of (Spatial_ops.skyline ~length:2 ~slide:2 ()) inputs in
  Alcotest.(check int) "both kept" 2 (List.length outs)

let test_top_k () =
  let inputs = List.map (fun v -> tuple [| v |]) [ 3.; 9.; 1.; 7.; 5. ] in
  let outs = outputs_of (Spatial_ops.top_k ~length:5 ~slide:5 ~k:3 ()) inputs in
  Alcotest.check float_list "top 3 descending" [ 9.0; 7.0; 5.0 ]
    (first_values outs)

let test_top_k_fewer_than_k () =
  let inputs = List.map (fun v -> tuple [| v |]) [ 2.; 1. ] in
  let outs = outputs_of (Spatial_ops.top_k ~length:2 ~slide:2 ~k:5 ()) inputs in
  Alcotest.(check int) "window smaller than k" 2 (List.length outs)

let test_per_key_spatial_ops () =
  (* Keyed skyline/top-k keep independent windows per key and declare the
     partitioned-stateful kind (replicable by fission). *)
  let sky = Spatial_ops.skyline ~length:2 ~slide:2 ~per_key:true () in
  Alcotest.(check bool) "skyline keyed kind" true
    (sky.Behavior.state_kind = Behavior.Partitioned_op);
  let fn = Behavior.instantiate sky in
  Alcotest.(check int) "key 0 filling" 0
    (List.length (fn (tuple ~key:0 [| 1.; 1. |])));
  Alcotest.(check int) "key 1 filling" 0
    (List.length (fn (tuple ~key:1 [| 2.; 2. |])));
  (* Key 0's window fires alone, containing only key 0's points. *)
  let fired = fn (tuple ~key:0 [| 3.; 0.5 |]) in
  Alcotest.(check int) "key 0 skyline of its own window" 2 (List.length fired);
  let topk = Spatial_ops.top_k ~length:3 ~slide:3 ~per_key:true ~k:1 () in
  Alcotest.(check bool) "topk keyed kind" true
    (topk.Behavior.state_kind = Behavior.Partitioned_op);
  let fn = Behavior.instantiate topk in
  ignore (fn (tuple ~key:7 [| 5. |]));
  ignore (fn (tuple ~key:7 [| 9. |]));
  ignore (fn (tuple ~key:8 [| 100. |]));
  match fn (tuple ~key:7 [| 1. |]) with
  | [ out ] ->
      Alcotest.(check (float 0.)) "key 7's max, not key 8's" 9.0
        (Tuple.value out 0)
  | outs -> Alcotest.failf "expected 1 firing, got %d" (List.length outs)

(* ------------------------------------------------------------------ *)
(* Joins and keyed state *)

let test_band_join_matches () =
  let b = Join_ops.band_join ~length:10 ~band:0.5 () in
  let fn = Behavior.instantiate b in
  (* Left side gets 1.0 and 3.0; right probe at 1.3 matches only 1.0. *)
  Alcotest.(check int) "no match yet" 0 (List.length (fn (tuple ~tag:0 [| 1.0 |])));
  Alcotest.(check int) "no match yet" 0 (List.length (fn (tuple ~tag:0 [| 3.0 |])));
  (match fn (tuple ~tag:1 [| 1.3 |]) with
  | [ out ] ->
      Alcotest.check float_list "joined pair" [ 1.3; 1.0 ]
        (Array.to_list out.Tuple.values)
  | outs -> Alcotest.failf "expected 1 match, got %d" (List.length outs));
  (* Left probe sees the right tuple stored above. *)
  Alcotest.(check int) "symmetric probe" 1
    (List.length (fn (tuple ~tag:0 [| 1.7 |])))

let test_band_join_window_eviction () =
  let b = Join_ops.band_join ~length:1 ~band:10.0 () in
  let fn = Behavior.instantiate b in
  ignore (fn (tuple ~tag:0 [| 1.0 |]));
  ignore (fn (tuple ~tag:0 [| 2.0 |]));
  (* Only the most recent left tuple is retained. *)
  Alcotest.(check int) "one candidate" 1 (List.length (fn (tuple ~tag:1 [| 0.0 |])))

let test_band_join_reference_nested_loop () =
  (* Compare against a brute-force join over full histories with windows
     large enough to never evict. *)
  let rng = Ss_prelude.Rng.create 5 in
  let stream =
    List.init 200 (fun i ->
        tuple ~tag:(Ss_prelude.Rng.int rng 2) [| Ss_prelude.Rng.float rng |]
        |> fun t -> { t with Tuple.ts = float_of_int i })
  in
  let b = Join_ops.band_join ~length:1000 ~band:0.1 () in
  let fn = Behavior.instantiate b in
  let measured = List.length (feed fn stream) in
  let expected = ref 0 in
  let seen = ref [] in
  List.iter
    (fun (t : Tuple.t) ->
      List.iter
        (fun (s : Tuple.t) ->
          if s.Tuple.tag <> t.Tuple.tag
             && Float.abs (Tuple.value s 0 -. Tuple.value t 0) <= 0.1
          then incr expected)
        !seen;
      seen := t :: !seen)
    stream;
  Alcotest.(check int) "same number of result pairs" !expected measured

let test_count_by_key () =
  let fn = Behavior.instantiate (Join_ops.count_by_key ()) in
  let out key = List.hd (fn (tuple ~key [| 0.0 |])) in
  Alcotest.(check (float 0.)) "first of 1" 1.0 (Tuple.value (out 1) 0);
  Alcotest.(check (float 0.)) "first of 2" 1.0 (Tuple.value (out 2) 0);
  Alcotest.(check (float 0.)) "second of 1" 2.0 (Tuple.value (out 1) 0)

let test_dedup () =
  let fn = Behavior.instantiate (Join_ops.dedup ~memory:2 ()) in
  let pass key = List.length (fn (tuple ~key [| 0.0 |])) = 1 in
  Alcotest.(check bool) "new key" true (pass 1);
  Alcotest.(check bool) "repeat dropped" false (pass 1);
  Alcotest.(check bool) "new key" true (pass 2);
  Alcotest.(check bool) "new key evicts oldest" true (pass 3);
  Alcotest.(check bool) "evicted key passes again" true (pass 1)

(* ------------------------------------------------------------------ *)
(* Event-time windows *)

let fired_ends fs = List.map (fun f -> f.Time_window.window_end) fs
let fired_contents fs = List.map (fun f -> f.Time_window.contents) fs

let test_tumbling_fires_on_watermark () =
  let w = Time_window.create (Time_window.Tumbling 10.0) in
  Alcotest.(check int) "nothing yet" 0 (List.length (Time_window.push w ~ts:1.0 "a"));
  Alcotest.(check int) "same window" 0 (List.length (Time_window.push w ~ts:9.0 "b"));
  (* ts=10 starts the next window and pushes the watermark past 10. *)
  let fired = Time_window.push w ~ts:10.0 "c" in
  Alcotest.(check (list (float 1e-9))) "window [0,10) fires" [ 10.0 ]
    (fired_ends fired);
  Alcotest.(check (list (list string))) "contents in arrival order"
    [ [ "a"; "b" ] ] (fired_contents fired)

let test_tumbling_boundaries () =
  let w = Time_window.create (Time_window.Tumbling 5.0) in
  ignore (Time_window.push w ~ts:4.999 "x");
  (* An element exactly on a boundary belongs to the next window. *)
  let fired = Time_window.push w ~ts:5.0 "y" in
  Alcotest.(check (list (list string))) "x alone in [0,5)" [ [ "x" ] ]
    (fired_contents fired);
  let fired = Time_window.push w ~ts:10.0 "z" in
  Alcotest.(check (list (list string))) "y alone in [5,10)" [ [ "y" ] ]
    (fired_contents fired)

let test_sliding_membership () =
  (* Length 10, slide 5: element at ts=7 belongs to [0,10) and [5,15). *)
  let w = Time_window.create (Time_window.Sliding (10.0, 5.0)) in
  ignore (Time_window.push w ~ts:7.0 "e");
  let fired = Time_window.push w ~ts:10.0 "f" in
  Alcotest.(check (list (float 1e-9))) "[.,10) fires" [ 10.0 ] (fired_ends fired);
  Alcotest.(check (list (list string))) "e in the first window" [ [ "e" ] ]
    (fired_contents fired);
  let fired = Time_window.push w ~ts:15.0 "g" in
  Alcotest.(check (list (float 1e-9))) "[5,15) fires" [ 15.0 ] (fired_ends fired);
  (* e (ts 7) and f (ts 10) both fall in [5,15). *)
  Alcotest.(check (list (list string))) "overlap contents" [ [ "e"; "f" ] ]
    (fired_contents fired)

let test_out_of_order_within_lateness () =
  let w = Time_window.create ~allowed_lateness:3.0 (Time_window.Tumbling 10.0) in
  ignore (Time_window.push w ~ts:11.0 "late-but-ok-buffer");
  (* Watermark is 8: the [0,10) window is still open; a ts=9 element makes it. *)
  Alcotest.(check int) "no firing yet" 0
    (List.length (Time_window.push w ~ts:9.0 "straggler"));
  Alcotest.(check int) "no loss" 0 (Time_window.late_count w);
  let fired = Time_window.push w ~ts:13.1 "advance" in
  Alcotest.(check (list (list string))) "straggler included" [ [ "straggler" ] ]
    (fired_contents fired)

let test_late_elements_dropped_and_counted () =
  let w = Time_window.create (Time_window.Tumbling 10.0) in
  ignore (Time_window.push w ~ts:25.0 "advance");
  (* Watermark 25: a ts=3 element has no open window left. *)
  Alcotest.(check int) "dropped silently" 0
    (List.length (Time_window.push w ~ts:3.0 "too-late"));
  Alcotest.(check int) "counted" 1 (Time_window.late_count w);
  Alcotest.(check (float 1e-9)) "watermark unchanged by late data" 25.0
    (Time_window.watermark w)

let test_multiple_windows_fire_in_order () =
  (* A large allowed lateness keeps several windows buffered; a big
     watermark jump then fires them together, oldest first. *)
  let w = Time_window.create ~allowed_lateness:20.0 (Time_window.Tumbling 5.0) in
  ignore (Time_window.push w ~ts:1.0 "a");
  ignore (Time_window.push w ~ts:6.0 "b");
  ignore (Time_window.push w ~ts:12.0 "c");
  Alcotest.(check int) "still buffered" 3 (Time_window.pending_windows w);
  let fired = Time_window.push w ~ts:45.0 "jump" in
  Alcotest.(check (list (float 1e-9))) "in order" [ 5.0; 10.0; 15.0 ]
    (fired_ends fired);
  Alcotest.(check (list (list string))) "right contents"
    [ [ "a" ]; [ "b" ]; [ "c" ] ] (fired_contents fired)

let test_capped_windows_fire_oldest () =
  (* A huge allowed lateness keeps windows open; the cap forces the oldest
     out early, with its partial contents. *)
  let w =
    Time_window.create ~allowed_lateness:100.0 ~max_open_windows:3
      (Time_window.Tumbling 1.0)
  in
  ignore (Time_window.push w ~ts:0.5 "a");
  ignore (Time_window.push w ~ts:1.5 "b");
  ignore (Time_window.push w ~ts:2.5 "c");
  Alcotest.(check int) "at the cap" 3 (Time_window.pending_windows w);
  let fired = Time_window.push w ~ts:3.5 "d" in
  Alcotest.(check (list (float 1e-9))) "oldest evicted early" [ 1.0 ]
    (fired_ends fired);
  Alcotest.(check (list (list string))) "partial contents" [ [ "a" ] ]
    (fired_contents fired);
  Alcotest.(check int) "cap held" 3 (Time_window.pending_windows w);
  Alcotest.(check int) "eviction counted" 1 (Time_window.evicted_count w);
  (* a straggler into the evicted window is late, not a reopened window *)
  Alcotest.(check int) "straggler fires nothing" 0
    (List.length (Time_window.push w ~ts:0.7 "late"));
  Alcotest.(check int) "straggler counted late" 1 (Time_window.late_count w);
  Alcotest.(check int) "window not reopened" 3 (Time_window.pending_windows w)

let test_capped_windows_drop_oldest () =
  let w =
    Time_window.create ~allowed_lateness:100.0 ~max_open_windows:2
      ~eviction:`Drop_oldest (Time_window.Tumbling 1.0)
  in
  ignore (Time_window.push w ~ts:0.5 "a");
  ignore (Time_window.push w ~ts:1.5 "b");
  Alcotest.(check int) "dropped silently" 0
    (List.length (Time_window.push w ~ts:2.5 "c"));
  Alcotest.(check int) "cap held" 2 (Time_window.pending_windows w);
  Alcotest.(check int) "eviction counted" 1 (Time_window.evicted_count w)

let test_time_window_invalid_args () =
  Alcotest.check_raises "zero length"
    (Invalid_argument "Time_window.create: length must be positive") (fun () ->
      ignore (Time_window.create (Time_window.Tumbling 0.0)));
  Alcotest.check_raises "slide > length"
    (Invalid_argument "Time_window.create: slide must not exceed length")
    (fun () -> ignore (Time_window.create (Time_window.Sliding (5.0, 10.0))));
  Alcotest.check_raises "negative lateness"
    (Invalid_argument "Time_window.create: negative lateness") (fun () ->
      ignore
        (Time_window.create ~allowed_lateness:(-1.0) (Time_window.Tumbling 5.0)));
  Alcotest.check_raises "zero cap"
    (Invalid_argument "Time_window.create: max_open_windows must be >= 1")
    (fun () ->
      ignore
        (Time_window.create ~max_open_windows:0 (Time_window.Tumbling 5.0)))

let test_time_ops_sum () =
  let b = Time_ops.sum ~kind:(Time_window.Tumbling 10.0) () in
  let fn = Behavior.instantiate b in
  let push ts v = fn (tuple ~ts [| v |]) in
  Alcotest.(check int) "buffering" 0 (List.length (push 1.0 2.0));
  Alcotest.(check int) "buffering" 0 (List.length (push 5.0 3.0));
  match push 12.0 1.0 with
  | [ out ] ->
      Alcotest.(check (float 1e-9)) "sum of the window" 5.0 (Tuple.value out 0);
      Alcotest.(check (float 1e-9)) "stamped with the window end" 10.0
        out.Tuple.ts
  | outs -> Alcotest.failf "expected one firing, got %d" (List.length outs)

let test_time_ops_per_key_isolation () =
  let b =
    Time_ops.count ~per_key:true ~kind:(Time_window.Tumbling 10.0) ()
  in
  let fn = Behavior.instantiate b in
  ignore (fn (tuple ~ts:1.0 ~key:1 [| 0. |]));
  ignore (fn (tuple ~ts:2.0 ~key:1 [| 0. |]));
  ignore (fn (tuple ~ts:3.0 ~key:2 [| 0. |]));
  (* Advancing key 1's stream does not fire key 2's window. *)
  (match fn (tuple ~ts:11.0 ~key:1 [| 0. |]) with
  | [ out ] ->
      Alcotest.(check (float 1e-9)) "two elements for key 1" 2.0
        (Tuple.value out 0);
      Alcotest.(check int) "key carried" 1 out.Tuple.key
  | _ -> Alcotest.fail "expected key-1 firing");
  match fn (tuple ~ts:11.0 ~key:2 [| 0. |]) with
  | [ out ] ->
      Alcotest.(check (float 1e-9)) "one element for key 2" 1.0
        (Tuple.value out 0)
  | _ -> Alcotest.fail "expected key-2 firing"

(* ------------------------------------------------------------------ *)
(* Catalog *)

let test_catalog_size_and_uniqueness () =
  let names = Catalog.names () in
  Alcotest.(check int) "20 operators" 20 (List.length names);
  Alcotest.(check int) "unique names" 20
    (List.length (List.sort_uniq compare names))

let test_catalog_find () =
  Alcotest.(check bool) "identity present" true (Catalog.find "identity" <> None);
  Alcotest.(check bool) "unknown absent" true (Catalog.find "nope" = None);
  Alcotest.check_raises "find_exn raises" Not_found (fun () ->
      ignore (Catalog.find_exn "nope"))

let test_catalog_partitions () =
  let total =
    List.length (Catalog.stateless ())
    + List.length (Catalog.partitioned ())
    + List.length (Catalog.stateful ())
  in
  Alcotest.(check int) "kinds partition the catalog" 20 total;
  Alcotest.(check int) "one binary operator" 1 (List.length (Catalog.joins ()));
  Alcotest.(check bool) "several stateless ops" true
    (List.length (Catalog.stateless ()) >= 8)

let test_catalog_instances_runnable () =
  (* Every catalog operator accepts a generic tuple without raising. *)
  List.iter
    (fun b ->
      let fn = Behavior.instantiate b in
      for i = 0 to 20 do
        ignore (fn (tuple ~key:(i mod 4) ~tag:(i mod 2) [| float_of_int i; 1.0 |]))
      done)
    (Catalog.all ())

let test_behavior_to_operator () =
  let b = Window_ops.sum ~spec:(spec 100 10) () in
  let op = Behavior.to_operator ~service_time:1e-3 b in
  Alcotest.(check bool) "stateful kind" true
    (op.Ss_topology.Operator.kind = Ss_topology.Operator.Stateful);
  Alcotest.(check (float 1e-9)) "selectivity copied" 10.0
    op.Ss_topology.Operator.input_selectivity;
  let keyed =
    Window_ops.mean ~spec:{ (spec 10 2) with Window_ops.per_key = true } ()
  in
  Alcotest.check_raises "partitioned needs keys"
    (Invalid_argument
       "Behavior.to_operator: a partitioned-stateful behavior needs a key \
        distribution")
    (fun () -> ignore (Behavior.to_operator ~service_time:1e-3 keyed));
  let op =
    Behavior.to_operator ~service_time:1e-3
      ~keys:(Ss_prelude.Discrete.uniform 8) keyed
  in
  Alcotest.(check bool) "partitioned kind" true
    (match op.Ss_topology.Operator.kind with
    | Ss_topology.Operator.Partitioned_stateful _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Properties *)

let points_gen =
  QCheck.(list_of_size (QCheck.Gen.int_range 1 30) (pair (float_range 0. 10.) (float_range 0. 10.)))

let prop_skyline_sound_and_complete =
  QCheck.Test.make ~name:"skyline = exactly the non-dominated points" ~count:300
    points_gen (fun pts ->
      let n = List.length pts in
      let inputs = List.map (fun (x, y) -> tuple [| x; y |]) pts in
      let outs = outputs_of (Spatial_ops.skyline ~length:n ~slide:n ()) inputs in
      let result = List.map (fun t -> (Tuple.value t 0, Tuple.value t 1)) outs in
      let expected =
        List.filter
          (fun p ->
            not (Spatial_ops.is_dominated p (List.filter (fun q -> q <> p) pts)))
          pts
      in
      List.sort compare result = List.sort compare expected)

let prop_top_k_matches_sort =
  QCheck.Test.make ~name:"top-k equals the k largest of a sort" ~count:300
    QCheck.(pair (int_range 1 10) (list_of_size (QCheck.Gen.int_range 1 40) (float_range (-5.) 5.)))
    (fun (k, vs) ->
      let n = List.length vs in
      let inputs = List.map (fun v -> tuple [| v |]) vs in
      let outs =
        outputs_of (Spatial_ops.top_k ~length:n ~slide:n ~k ()) inputs
      in
      let expected =
        List.sort (fun a b -> compare b a) vs |> List.filteri (fun i _ -> i < k)
      in
      first_values outs = expected)

let prop_window_firing_rate =
  QCheck.Test.make ~name:"window fires floor((n-w)/s)+1 times" ~count:300
    QCheck.(triple (int_range 1 20) (int_range 1 10) (int_range 0 200))
    (fun (w, s, n) ->
      let window = Window.create ~length:w ~slide:s in
      let fires = ref 0 in
      for i = 1 to n do
        if Window.push window i <> None then incr fires
      done;
      let expected = if n < w then 0 else ((n - w) / s) + 1 in
      !fires = expected)

let prop_sampler_rate =
  QCheck.Test.make ~name:"sampler keeps exactly n/k of n inputs" ~count:100
    QCheck.(pair (int_range 1 10) (int_range 0 500))
    (fun (k, n) ->
      let outs =
        outputs_of
          (Stateless_ops.sampler ~keep_one_in:k)
          (List.init n (fun i -> tuple [| float_of_int i |]))
      in
      List.length outs = n / k)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  let prop t = QCheck_alcotest.to_alcotest t in
  Alcotest.run "ss_operators"
    [
      ( "window",
        [
          quick "fires when full" test_window_fires_when_full;
          quick "slide one" test_window_slide_one;
          quick "eviction" test_window_eviction;
          quick "reset" test_window_reset;
          quick "invalid parameters" test_window_invalid;
        ] );
      ( "stateless",
        [
          quick "identity" test_identity;
          quick "scale and offset" test_scale_offset;
          quick "threshold filter" test_threshold_filter;
          quick "sampler" test_sampler;
          quick "flat split" test_flat_split;
          quick "project" test_project;
          quick "rekey" test_rekey_deterministic_and_bounded;
          quick "enrich" test_enrich;
          quick "compute" test_compute_changes_value;
        ] );
      ( "aggregation",
        [
          quick "windowed sum" test_windowed_sum;
          quick "windowed max/min" test_windowed_max_min;
          quick "windowed mean" test_windowed_mean;
          quick "weighted moving average" test_weighted_moving_average;
          quick "quantiles" test_quantile_exact;
          quick "per-key windows independent" test_per_key_windows_are_independent;
          quick "fresh instances isolated" test_fresh_instances_do_not_share_state;
          quick "declared selectivities" test_declared_selectivities;
        ] );
      ( "spatial",
        [
          quick "skyline small example" test_skyline_small;
          quick "skyline duplicates" test_skyline_duplicates_survive;
          quick "top-k" test_top_k;
          quick "top-k short window" test_top_k_fewer_than_k;
          quick "per-key spatial operators" test_per_key_spatial_ops;
        ] );
      ( "joins",
        [
          quick "band join matching" test_band_join_matches;
          quick "band join eviction" test_band_join_window_eviction;
          quick "band join vs nested loop" test_band_join_reference_nested_loop;
          quick "count by key" test_count_by_key;
          quick "dedup" test_dedup;
        ] );
      ( "time_windows",
        [
          quick "tumbling fires on watermark" test_tumbling_fires_on_watermark;
          quick "tumbling boundaries" test_tumbling_boundaries;
          quick "sliding membership" test_sliding_membership;
          quick "out-of-order within lateness" test_out_of_order_within_lateness;
          quick "late elements dropped" test_late_elements_dropped_and_counted;
          quick "batched firings in order" test_multiple_windows_fire_in_order;
          quick "cap fires oldest" test_capped_windows_fire_oldest;
          quick "cap drops oldest" test_capped_windows_drop_oldest;
          quick "invalid arguments" test_time_window_invalid_args;
          quick "event-time sum" test_time_ops_sum;
          quick "per-key isolation" test_time_ops_per_key_isolation;
        ] );
      ( "catalog",
        [
          quick "size and uniqueness" test_catalog_size_and_uniqueness;
          quick "lookup" test_catalog_find;
          quick "kind partition" test_catalog_partitions;
          quick "all instances runnable" test_catalog_instances_runnable;
          quick "behavior to operator" test_behavior_to_operator;
        ] );
      ( "properties",
        [
          prop prop_skyline_sound_and_complete;
          prop prop_top_k_matches_sort;
          prop prop_window_firing_rate;
          prop prop_sampler_rate;
        ] );
    ]
